"""Tests for the ``repro serve`` subsystem (ISSUE 7 tentpole).

Three layers of coverage:

* **unit** -- coalesce keys are content-addressed (cosmetic spec changes
  coalesce, result-changing ones split), the coalescer shares exactly one
  task per key and survives waiter cancellation, the error envelope has
  the agreed shape;
* **integration** -- a real server on a real socket, driven by the real
  :class:`~repro.serve.client.ServeClient`: the acceptance bar (8
  concurrent identical requests -> 1 computation, 7 coalesce hits,
  telemetry-proven), distinct requests not blocking each other, a client
  disconnect mid-stream not poisoning the shared computation, streaming
  event order, warm repeats answered from the network cache tier;
* **identity** -- served rows are byte-identical (as JSON) to what the
  CLI path (:meth:`Session.run`) produces for the same spec.

Concurrency tests are made deterministic with a ``GatedSession`` whose
``run`` blocks on a per-spec-name event: the test holds the gate until
telemetry proves every request has arrived (and coalesced), then
releases -- no sleeps, no timing races.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import string
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, Session
from repro.errors import (
    ERROR_ENVELOPE_VERSION,
    envelope_from_exception,
    error_envelope,
    format_error,
)
from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, ServeError
from repro.serve.coalescer import RequestCoalescer
from repro.serve.protocol import (
    RequestError,
    parse_search_request,
    run_coalesce_key,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TINYCNN = str(REPO_ROOT / "examples" / "workloads" / "tinycnn.json")

#: Milliseconds-fast spec all integration tests share (TinyCNN, smoke
#: sampling).  ``dict(SPEC_DICT)`` copies are mutated per test.
SPEC_DICT = {
    "name": "serve-test",
    "designs": ["Dense"],
    "categories": ["DNN.B"],
    "networks": [TINYCNN],
    "options": {"passes_per_gemm": 1, "max_t_steps": 8},
}


def make_spec(**overrides) -> dict:
    spec = json.loads(json.dumps(SPEC_DICT))
    spec.update(overrides)
    return spec


# ---------------------------------------------------------------------------
# Error envelope (shared CLI/server shape)


class TestErrorEnvelope:
    def test_shape_and_version(self):
        envelope = error_envelope("invalid-request", "boom", detail={"x": 1})
        assert envelope == {
            "error": {
                "v": ERROR_ENVELOPE_VERSION,
                "kind": "invalid-request",
                "message": "boom",
                "detail": {"x": 1},
            }
        }

    def test_detail_omitted_when_none(self):
        assert "detail" not in error_envelope("k", "m")["error"]

    def test_exception_kind_mapping(self):
        assert envelope_from_exception(ValueError("v"))["error"]["kind"] == \
            "invalid-request"
        assert envelope_from_exception(OSError("o"))["error"]["kind"] == "io-error"
        assert envelope_from_exception(RuntimeError("r"))["error"]["kind"] == \
            "internal-error"

    def test_keyerror_message_is_unwrapped(self):
        envelope = envelope_from_exception(KeyError("designs"))
        assert envelope["error"]["message"] == "missing key: designs"

    def test_format_keeps_historical_cli_prefix(self):
        assert format_error(error_envelope("k", "boom")) == "error: boom"


# ---------------------------------------------------------------------------
# Coalesce keys


class TestCoalesceKey:
    def test_cosmetic_differences_coalesce(self):
        a = ExperimentSpec.from_dict(make_spec())
        b = ExperimentSpec.from_dict(make_spec(name="other", title="Other run"))
        assert run_coalesce_key(a) == run_coalesce_key(b)

    def test_design_alias_coalesces(self):
        # Baseline is an alias of Dense: same resolved design fingerprint.
        a = ExperimentSpec.from_dict(make_spec(designs=["Dense"]))
        b = ExperimentSpec.from_dict(make_spec(designs=["Baseline"]))
        assert run_coalesce_key(a) == run_coalesce_key(b)

    def test_result_changing_fields_split(self):
        base = ExperimentSpec.from_dict(make_spec())
        for overrides in (
            {"designs": ["Griffin"]},
            {"categories": ["DNN.dense"]},
            {"options": {"passes_per_gemm": 2, "max_t_steps": 8}},
            {"networks": ["AlexNet"]},
        ):
            other = ExperimentSpec.from_dict(make_spec(**overrides))
            assert run_coalesce_key(base) != run_coalesce_key(other), overrides

    def test_quick_override_resolving_identically_coalesces(self):
        spec = ExperimentSpec.from_dict(make_spec())
        quick_spec = ExperimentSpec.from_dict(make_spec(
            options={"passes_per_gemm": 1, "max_t_steps": 16}
        ))
        # quick=True forces (1 pass, 16 steps): identical resolved settings.
        assert run_coalesce_key(spec, quick=True) == \
            run_coalesce_key(quick_spec, quick=None)


#: Result-changing spec fields, one parametrized case per field: each
#: override below MUST split the coalesce key (a collision would hand one
#: requester another experiment's rows).
RESULT_CHANGING_OVERRIDES = [
    ("design", {"designs": ["Griffin"]}),
    ("design-list", {"designs": ["Dense", "Griffin"]}),
    ("category", {"categories": ["DNN.dense"]}),
    ("workload-token", {"networks": ["AlexNet"]}),
    ("workload-override", {"networks": [TINYCNN + ":weight_density=0.25"]}),
    ("options-passes", {"options": {"passes_per_gemm": 2, "max_t_steps": 8}}),
    ("options-max-t", {"options": {"passes_per_gemm": 1, "max_t_steps": 16}}),
    ("options-seed",
     {"options": {"passes_per_gemm": 1, "max_t_steps": 8, "seed": 9}}),
    ("options-stalls",
     {"options": {"passes_per_gemm": 1, "max_t_steps": 8,
                  "include_stalls": False}}),
    ("options-drain",
     {"options": {"passes_per_gemm": 1, "max_t_steps": 8,
                  "pipeline_drain": 0}}),
]


class TestCoalesceKeyProperties:
    """Property-style: the key is a function of result-relevant content
    only.  Seeded random cosmetic re-dressings (names, titles, JSON key
    order, serialization whitespace) can never move it; every
    result-changing field provably splits it."""

    COSMETIC_TRIALS = 32

    def _cosmetic_variant(self, rng: random.Random, spec: dict) -> dict:
        """A randomly re-dressed copy with identical evaluation content."""
        letters = string.ascii_letters + string.digits + " -_."
        mutated = dict(spec)
        mutated["name"] = "".join(
            rng.choice(letters) for _ in range(rng.randint(0, 24))
        )
        if rng.random() < 0.7:
            mutated["title"] = "".join(
                rng.choice(letters) for _ in range(rng.randint(0, 40))
            )
        else:
            mutated.pop("title", None)
        # Shuffle key order at both nesting levels, then round-trip the
        # document through a randomly-formatted JSON serialization: key
        # order and whitespace are exactly what a content-addressed
        # identity must ignore.
        items = list(mutated.items())
        rng.shuffle(items)
        mutated = dict(items)
        if "options" in mutated:
            options = list(dict(mutated["options"]).items())
            rng.shuffle(options)
            mutated["options"] = dict(options)
        text = json.dumps(
            mutated,
            indent=rng.choice([None, 1, 2, 4]),
            separators=rng.choice([None, (",", ":"), (", ", ": ")]),
        )
        return json.loads(text)

    def test_cosmetic_mutations_never_change_the_key(self):
        rng = random.Random(2022)
        base = run_coalesce_key(ExperimentSpec.from_dict(make_spec()))
        for trial in range(self.COSMETIC_TRIALS):
            variant = self._cosmetic_variant(rng, make_spec())
            spec = ExperimentSpec.from_dict(variant)
            assert run_coalesce_key(spec) == base, (trial, variant)

    @pytest.mark.parametrize(
        "field,overrides",
        RESULT_CHANGING_OVERRIDES,
        ids=[field for field, _ in RESULT_CHANGING_OVERRIDES],
    )
    def test_each_result_changing_field_splits_the_key(self, field, overrides):
        base = run_coalesce_key(ExperimentSpec.from_dict(make_spec()))
        changed = ExperimentSpec.from_dict(make_spec(**overrides))
        split = run_coalesce_key(changed)
        assert split != base, field
        # The split is intrinsic to the content, not to this spelling:
        # cosmetic re-dressings of the changed spec stay on its key.
        rng = random.Random(hash(field) & 0xFFFF)
        for _ in range(4):
            variant = self._cosmetic_variant(rng, make_spec(**overrides))
            assert run_coalesce_key(ExperimentSpec.from_dict(variant)) == \
                split, field


# ---------------------------------------------------------------------------
# Served search specs must not drive server-side file writes


class TestSearchCheckpointRejection:
    def test_parse_rejects_checkpoint_field(self):
        body = json.dumps({"space": "b", "checkpoint": "evil.json"}).encode()
        with pytest.raises(RequestError, match="checkpoint"):
            parse_search_request(body, {})

    def test_checkpoint_free_spec_parses(self):
        body = json.dumps({"space": "b"}).encode()
        spec, quick, stream = parse_search_request(body, {})
        assert spec.checkpoint is None
        assert quick is None and stream is False


# ---------------------------------------------------------------------------
# Coalescer semantics (pure asyncio, no HTTP)


class TestCoalescer:
    def test_identical_keys_share_one_start(self):
        starts = []

        async def scenario():
            coalescer = RequestCoalescer()
            release = asyncio.Event()

            async def factory(computation):
                starts.append(computation.key)
                await release.wait()
                return "answer"

            joins = [coalescer.join("k", factory) for _ in range(5)]
            assert [c for _, c in joins] == [False, True, True, True, True]
            assert len({id(comp) for comp, _ in joins}) == 1
            release.set()
            results = await asyncio.gather(
                *(coalescer.wait(comp) for comp, _ in joins)
            )
            assert results == ["answer"] * 5
            assert len(coalescer) == 0  # done-callback cleaned up

        asyncio.run(scenario())
        assert starts == ["k"]

    def test_distinct_keys_run_independently(self):
        async def scenario():
            coalescer = RequestCoalescer()
            release_a = asyncio.Event()

            async def slow(_comp):
                await release_a.wait()
                return "slow"

            async def fast(_comp):
                return "fast"

            comp_a, _ = coalescer.join("a", slow)
            comp_b, coalesced = coalescer.join("b", fast)
            assert not coalesced
            assert await coalescer.wait(comp_b) == "fast"  # b never waits on a
            release_a.set()
            assert await coalescer.wait(comp_a) == "slow"

        asyncio.run(scenario())

    def test_cancelled_waiter_does_not_poison_shared_computation(self):
        async def scenario():
            coalescer = RequestCoalescer()
            release = asyncio.Event()

            async def factory(_comp):
                await release.wait()
                return 42

            comp, _ = coalescer.join("k", factory)
            doomed = asyncio.ensure_future(coalescer.wait(comp))
            survivor = asyncio.ensure_future(coalescer.wait(comp))
            await asyncio.sleep(0)  # let both attach
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            assert not comp.task.cancelled()
            release.set()
            assert await survivor == 42

        asyncio.run(scenario())

    def test_failure_reaches_every_waiter(self):
        async def scenario():
            coalescer = RequestCoalescer()

            async def factory(_comp):
                raise ValueError("bad spec")

            comp, _ = coalescer.join("k", factory)
            for _ in range(2):
                with pytest.raises(ValueError, match="bad spec"):
                    await coalescer.wait(comp)
            # The failed computation is no longer in flight: a retry with
            # the same key starts fresh instead of replaying the error.
            async def ok(_comp):
                return "recovered"

            comp2, coalesced = coalescer.join("k", ok)
            assert not coalesced
            assert await coalescer.wait(comp2) == "recovered"

        asyncio.run(scenario())

    def test_progress_fans_out_to_every_subscriber(self):
        async def scenario():
            coalescer = RequestCoalescer()
            release = asyncio.Event()

            async def factory(comp):
                comp.publish({"event": "progress", "done": 1, "total": 2})
                await release.wait()
                return "x"

            comp, _ = coalescer.join("k", factory)
            q1, q2 = comp.subscribe(), comp.subscribe()
            release.set()
            await coalescer.wait(comp)
            for queue in (q1, q2):
                assert (await queue.get())["event"] == "progress"
                assert (await queue.get())["event"] == "done"

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Integration: a real server on a real socket


class GatedSession(Session):
    """A session whose ``run`` blocks on a per-spec-name gate.

    Lets a test hold a computation open until telemetry proves every
    concurrent request has arrived, making coalescing assertions
    deterministic.  ``run_calls`` records every *actual* evaluation --
    the ground truth the coalesce counters are checked against.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gates: dict[str, threading.Event] = {}
        self.run_calls: list[str] = []
        self._calls_lock = threading.Lock()

    def run(self, spec, quick=None, progress=None):
        spec = ExperimentSpec.coerce(spec)
        with self._calls_lock:
            self.run_calls.append(spec.name)
        gate = self.gates.get(spec.name)
        if gate is not None:
            assert gate.wait(timeout=30.0), f"gate {spec.name!r} never released"
        return super().run(spec, quick=quick, progress=progress)


class ServerFixture:
    """A ServeApp on its own event-loop thread, bound to a free port."""

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=10.0), "server failed to start"
        self.client = ServeClient(port=self.app.port, timeout=60.0)

    def _main(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def body():
            await self.app.start(port=0)
            self._started.set()
            await self.app.wait_for_shutdown_request()
            await self.app.shutdown()

        self.loop.run_until_complete(body())
        self.loop.close()

    def stop(self) -> None:
        try:
            self.loop.call_soon_threadsafe(self.app.request_shutdown)
        except RuntimeError:
            pass  # loop already closed: the server shut itself down
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive(), "server failed to shut down"


@pytest.fixture
def server(tmp_path):
    session = GatedSession(cache_dir=str(tmp_path / "cache"), keep_pool=True)
    fixture = ServerFixture(ServeApp(session, compute_threads=4))
    yield fixture
    fixture.stop()


def poll_until(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestServerBasics:
    def test_health_and_version(self, server):
        from repro import __version__

        health = server.client.health()
        assert health["ok"] is True
        assert health["version"] == __version__

    def test_unknown_endpoint_is_enveloped_404(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.client._json("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "not-found"

    def test_malformed_body_is_enveloped_400(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.client._json("POST", "/run", b"not json")
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "invalid-request"

    def test_unknown_spec_keys_are_enveloped_400(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.client.run({"designs": ["Dense"], "bogus": 1})
        assert excinfo.value.status == 400
        assert "bogus" in excinfo.value.envelope["error"]["message"]

    def test_search_checkpoint_is_enveloped_400_and_writes_nothing(
        self, server, tmp_path
    ):
        target = tmp_path / "client-chosen.json"
        with pytest.raises(ServeError) as excinfo:
            server.client.search({"space": "b", "checkpoint": str(target)})
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "invalid-request"
        assert "checkpoint" in excinfo.value.envelope["error"]["message"]
        assert not target.exists()

    def _raw(self, server, request_text: str) -> bytes:
        sock = socket.create_connection(
            ("127.0.0.1", server.app.port), timeout=30.0
        )
        try:
            sock.sendall(request_text.encode())
            received = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    return received
                received += chunk
        finally:
            sock.close()

    def test_malformed_content_length_is_enveloped_400(self, server):
        for bad in ("abc", "-5", "1e3", "+2"):
            response = self._raw(
                server,
                f"POST /run HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {bad}\r\n\r\n",
            )
            assert response.startswith(b"HTTP/1.1 400"), (bad, response[:64])
            assert b"invalid-request" in response

    def test_header_line_flood_is_enveloped_400(self, server):
        flood = "".join(f"X-Header-{i}: {i}\r\n" for i in range(80))
        response = self._raw(
            server, f"GET /healthz HTTP/1.1\r\n{flood}\r\n"
        )
        assert response.startswith(b"HTTP/1.1 400")
        assert b"header lines" in response

    def test_run_and_warm_repeat_hits_network_tier(self, server):
        first = server.client.run(make_spec())
        assert first["serve"]["coalesced"] is False
        assert first["rows"]
        second = server.client.run(make_spec())
        cache = second["cache"]
        # The warm repeat is served entirely from the network tier.
        assert cache["network_hits"] > 0
        layer_lookups = (cache["hits"] - cache["network_hits"]) + \
            (cache["misses"] - cache["network_misses"])
        assert layer_lookups == 0
        assert second["rows"] == first["rows"]

    def test_stats_counts_requests_and_latency(self, server):
        server.client.run(make_spec())
        stats = server.client.stats()
        assert stats["requests"]["by_endpoint"]["POST /run"] == 1
        assert stats["coalesce"]["computations"] == 1
        assert stats["latency"]["compute"]["count"] == 1
        assert stats["latency"]["compute"]["max_ms"] > 0

    def test_streaming_events_and_result_match_unary(self, server):
        unary = server.client.run(make_spec())
        events = list(server.client.run_stream(make_spec()))
        kinds = [e.get("event") for e in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        assert all(k == "progress" for k in kinds[1:-1])
        assert events[-1]["rows"] == unary["rows"]


class TestCoalescingUnderConcurrency:
    def test_eight_identical_requests_one_computation(self, server):
        """The ISSUE 7 acceptance bar, telemetry-proven."""
        session = server.app.session
        gate = session.gates["serve-test"] = threading.Event()
        pool = ThreadPoolExecutor(max_workers=8)
        futures = [
            pool.submit(server.client.run, make_spec()) for _ in range(8)
        ]
        arrived = poll_until(lambda: (
            server.client.stats()["coalesce"]["hits"] == 7
            and server.client.stats()["coalesce"]["in_flight"] == 1
        ))
        gate.set()
        results = [f.result(timeout=60) for f in futures]
        assert arrived, "requests never coalesced onto one computation"
        assert session.run_calls == ["serve-test"]  # exactly one evaluation
        stats = server.client.stats()
        assert stats["coalesce"]["computations"] == 1
        assert stats["coalesce"]["hits"] == 7
        rows = {json.dumps(r["rows"], sort_keys=True) for r in results}
        assert len(rows) == 1
        assert sorted(r["serve"]["coalesced"] for r in results) == \
            [False] + [True] * 7

    def test_coalesced_waiter_sees_its_own_spec_name(self, server):
        """The key ignores name/title, but each response must carry the
        name/title of the spec that was actually posted -- the
        bitwise-identity contract holds per waiter, not per owner."""
        session = server.app.session
        gate = session.gates["owner"] = threading.Event()
        pool = ThreadPoolExecutor(max_workers=2)
        owner = pool.submit(
            server.client.run, make_spec(name="owner", title="Owner's run")
        )
        assert poll_until(lambda: "owner" in session.run_calls)
        waiter = pool.submit(
            server.client.run, make_spec(name="waiter", title="Waiter's run")
        )
        assert poll_until(
            lambda: server.client.stats()["coalesce"]["hits"] == 1
        )
        gate.set()
        owner_result = owner.result(timeout=60)
        waiter_result = waiter.result(timeout=60)
        assert session.run_calls == ["owner"]  # one shared evaluation
        assert owner_result["experiment"] == "owner"
        assert waiter_result["experiment"] == "waiter"
        assert waiter_result["serve"]["coalesced"] is True
        assert waiter_result["rows"] == owner_result["rows"]

    def test_distinct_requests_do_not_block_each_other(self, server):
        session = server.app.session
        gate = session.gates["blocked"] = threading.Event()
        pool = ThreadPoolExecutor(max_workers=2)
        slow = pool.submit(server.client.run, make_spec(name="blocked"))
        assert poll_until(lambda: "blocked" in session.run_calls)
        try:
            # A different request completes while "blocked" holds its gate.
            fast = server.client.run(make_spec(designs=["Griffin"]))
            assert fast["rows"]
            assert not slow.done()
        finally:
            gate.set()
        assert slow.result(timeout=60)["rows"]

    def test_client_disconnect_does_not_poison_shared_future(self, server):
        session = server.app.session
        gate = session.gates["serve-test"] = threading.Event()
        body = json.dumps(make_spec()).encode()

        # Client A: a raw socket so the disconnect is a genuine TCP close
        # mid-stream, not a polite HTTP shutdown.
        sock = socket.create_connection(("127.0.0.1", server.app.port),
                                        timeout=30.0)
        sock.sendall(
            (f"POST /run?stream=1 HTTP/1.1\r\nHost: t\r\n"
             f"Content-Type: application/json\r\n"
             f"Content-Length: {len(body)}\r\n\r\n").encode() + body
        )
        received = b""
        while b'"accepted"' not in received:
            chunk = sock.recv(4096)
            assert chunk, "connection closed before the accepted event"
            received += chunk
        sock.close()  # hard disconnect mid-computation

        # Client B joins the same in-flight computation...
        pool = ThreadPoolExecutor(max_workers=1)
        survivor = pool.submit(server.client.run, make_spec())
        assert poll_until(
            lambda: server.client.stats()["coalesce"]["hits"] == 1
        )
        gate.set()
        # ...and still gets the full result.
        result = survivor.result(timeout=60)
        assert result["rows"]
        assert result["serve"]["coalesced"] is True
        assert session.run_calls == ["serve-test"]

    def test_draining_server_finishes_old_work_and_rejects_new(self, server):
        """Graceful shutdown: in-flight requests drain, new ones get 503."""
        session = server.app.session
        gate = session.gates["hold"] = threading.Event()
        pool = ThreadPoolExecutor(max_workers=1)
        held = pool.submit(server.client.run, make_spec(name="hold"))
        assert poll_until(lambda: "hold" in session.run_calls)
        server.client.shutdown()
        with pytest.raises(ServeError) as excinfo:
            server.client.run(make_spec())
        assert excinfo.value.status == 503
        assert excinfo.value.kind == "draining"
        gate.set()
        # The in-flight request was drained, not dropped.
        assert held.result(timeout=60)["rows"]


class TestBitwiseIdentity:
    def test_served_rows_equal_cli_rows(self, tmp_path):
        """The served payload is the `repro run --json` payload, bit for bit."""
        spec = make_spec(designs=["Dense", "Griffin"],
                         categories=["DNN.B", "DNN.dense"])
        cli_session = Session(cache_dir=str(tmp_path / "cli-cache"))
        cli_result = cli_session.run(ExperimentSpec.from_dict(spec))
        cli_payload = cli_result.to_dict()

        session = Session(cache_dir=str(tmp_path / "serve-cache"),
                          keep_pool=True)
        fixture = ServerFixture(ServeApp(session, compute_threads=2))
        try:
            served = fixture.client.run(spec)
        finally:
            fixture.stop()
        assert json.dumps(served["rows"], sort_keys=True) == \
            json.dumps(cli_payload["rows"], sort_keys=True)
        assert served["categories"] == cli_payload["categories"]
        assert served["experiment"] == cli_payload["experiment"]


class TestMetricsEndpoint:
    """``GET /metrics`` (Prometheus text) and the widened ``/stats``."""

    PROM_SAMPLE_RE = __import__("re").compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.eE+-]+)$"
    )

    def _get_metrics(self, server) -> str:
        import http.client

        conn = http.client.HTTPConnection(
            "127.0.0.1", server.app.port, timeout=30.0
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode()
            assert response.status == 200
            assert response.getheader("Content-Type", "").startswith("text/plain")
            return body
        finally:
            conn.close()

    def test_metrics_parses_as_prometheus_text(self, server):
        server.client.run(make_spec())
        text = self._get_metrics(server)
        for line in text.rstrip("\n").splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert self.PROM_SAMPLE_RE.match(line), f"bad line: {line!r}"
        assert "# TYPE repro_serve_requests_received_total counter" in text
        assert 'repro_serve_requests_received_total{endpoint="POST /run"} 1' in text
        assert "# TYPE repro_serve_compute_ms histogram" in text
        assert 'repro_serve_compute_ms_bucket{le="+Inf"} 1' in text
        # The session's cache counters render too (the /metrics scrape in
        # CI asserts the cold run put results into the network tier).
        assert 'repro_cache_events_total{tier="network",event="puts"}' in text

    def test_metrics_exposes_the_coalesce_counter(self, server):
        server.client.run(make_spec())
        text = self._get_metrics(server)
        # Eagerly rendered at zero: the serve-smoke scrape can always
        # assert its presence, hit or not.
        assert "repro_serve_coalesce_hits_total 0" in text
        assert "repro_serve_computations_total 1" in text

    def test_stats_keeps_legacy_keys_and_adds_schema_version(self, server):
        server.client.run(make_spec())
        stats = server.client.stats()
        # Legacy shape, pinned since the serve PR.
        assert stats["v"] == 1
        assert stats["requests"]["by_endpoint"]["POST /run"] == 1
        assert stats["coalesce"]["computations"] == 1
        assert stats["latency"]["compute"]["count"] == 1
        assert set(stats["latency"]["compute"]) == {
            "count", "total_ms", "max_ms", "mean_ms",
        }
        # Additive schema revision 2.
        assert stats["schema_version"] == 2
        assert stats["uptime_s"] >= 0
        endpoint = stats["latency"]["endpoints"]["POST /run"]
        assert endpoint["count"] == 1
        assert endpoint["max_ms"] > 0
        assert 0 <= endpoint["p50_ms"] <= endpoint["p90_ms"]

    def test_request_spans_stitch_to_compute_spans(self, server):
        from repro.obs import trace as obs_trace
        from repro.obs.report import span_structure

        tracer = obs_trace.Tracer()
        previous = obs_trace.set_tracer(tracer)
        try:
            server.client.run(make_spec())
        finally:
            obs_trace.set_tracer(previous)
        spans = tracer.export()
        by_name = {rec["name"]: rec for rec in spans}
        assert by_name["serve.request"]["parent"] is None
        assert by_name["serve.request"]["attrs"]["endpoint"] == "/run"
        assert by_name["serve.request"]["attrs"]["coalesced"] is False
        # The compute span ran on an executor thread but is stitched
        # under its request span by explicit parent id.
        assert by_name["serve.compute"]["parent"] == by_name["serve.request"]["id"]
        structure = span_structure(spans)
        assert structure[0][0] == "serve.request"
