"""Tests for the dual-sparsity seven-step pipeline composition."""

import numpy as np
import pytest

from repro.config import sparse_ab
from repro.sim.compaction import compact_schedule
from repro.sim.dual import dual_sparse_cycles, filtered_pair_mask


def masks(seed, t=20, lanes=8, m=4, n=6, pa=0.5, pb=0.3):
    rng = np.random.default_rng(seed)
    a = rng.random((t, lanes, m)) < pa
    b = rng.random((t, lanes, n)) < pb
    return a, b


class TestFilteredPairMask:
    def test_pair_count_matches_joint_mask(self):
        a, b = masks(0)
        cfg = sparse_ab(1, 0, 0, 2, 0, 0)
        pair, _ = filtered_pair_mask(a, b, cfg)
        # Every effectual pair (A nz AND B nz) appears exactly once.
        joint = (a[:, :, :, None] & b[:, :, None, :]).sum()
        assert pair.sum() == joint

    def test_schedule_length_covers_drain(self):
        a, b = masks(1)
        cfg = sparse_ab(1, 0, 0, 3, 0, 0)
        pair, b_len = filtered_pair_mask(a, b, cfg)
        assert pair.shape[0] == b_len
        ref = compact_schedule(b[:, :, :, None], 3, 0, 0, return_schedule=True)
        assert b_len == ref.cycles

    def test_dense_a_keeps_all_scheduled_b(self):
        a = np.ones((16, 4, 2), dtype=bool)
        rng = np.random.default_rng(2)
        b = rng.random((16, 4, 5)) < 0.4
        cfg = sparse_ab(2, 0, 0, 2, 0, 1)
        pair, _ = filtered_pair_mask(a, b, cfg)
        assert pair.sum() == b.sum() * a.shape[2]

    def test_shape_mismatch_rejected(self):
        a = np.ones((10, 4, 2), dtype=bool)
        b = np.ones((11, 4, 3), dtype=bool)
        with pytest.raises(ValueError):
            filtered_pair_mask(a, b, sparse_ab(1, 0, 0, 1, 0, 0))


class TestDualCycles:
    def test_dense_b_reduces_to_sparse_a(self):
        # Table III: dual sparse on DNN.A downgrades to Sparse.A(da1,0,0).
        rng = np.random.default_rng(3)
        a = rng.random((24, 8, 4)) < 0.5
        b = np.ones((24, 8, 6), dtype=bool)
        cfg = sparse_ab(2, 0, 0, 2, 0, 1)
        dual = dual_sparse_cycles(a, b, cfg)
        # Phase 1 on a dense B is the identity schedule, so the result must
        # equal a plain Sparse.A(2,0,0) compaction of A replicated over n.
        a_rep = np.repeat(a[:, :, :, None], 6, axis=3)
        single = compact_schedule(a_rep, 2, 0, 0)
        assert dual.cycles == single.cycles

    def test_dense_a_at_least_single_b_quality(self):
        # With dense A, the dual pipeline behaves between Sparse.B(db...)
        # and the deeper offline window (the Griffin morph headroom).
        rng = np.random.default_rng(4)
        a = np.ones((32, 8, 4), dtype=bool)
        b = rng.random((32, 8, 8)) < 0.25
        cfg = sparse_ab(2, 0, 0, 2, 0, 1)
        dual = dual_sparse_cycles(a, b, cfg)
        single = compact_schedule(b, 2, 0, 1)
        deep = compact_schedule(b, 8, 0, 1)
        assert dual.cycles <= single.cycles
        assert dual.cycles >= deep.cycles

    def test_executes_every_pair(self):
        a, b = masks(5)
        cfg = sparse_ab(1, 0, 0, 1, 0, 0)
        dual = dual_sparse_cycles(a, b, cfg)
        joint = (a[:, :, :, None] & b[:, :, None, :]).sum()
        assert dual.executed_pairs == joint

    def test_combined_window_cap(self):
        # Combined ideal speedup is bounded by ABUF depth (1+da1)(1+db1).
        a = np.zeros((36, 4, 2), dtype=bool)
        b = np.zeros((36, 4, 3), dtype=bool)
        cfg = sparse_ab(2, 0, 0, 2, 0, 0)
        dual = dual_sparse_cycles(a, b, cfg)
        assert dual.cycles >= int(np.ceil(36 / 9))

    def test_sparser_inputs_never_slower(self):
        rng = np.random.default_rng(6)
        a_dense = rng.random((20, 8, 4)) < 0.9
        a_sparse = a_dense & (rng.random((20, 8, 4)) < 0.5)
        b = rng.random((20, 8, 6)) < 0.3
        cfg = sparse_ab(2, 0, 0, 2, 0, 1)
        dense_res = dual_sparse_cycles(a_dense, b, cfg)
        sparse_res = dual_sparse_cycles(a_sparse, b, cfg)
        assert sparse_res.cycles <= dense_res.cycles

    def test_empty_inputs(self):
        a = np.zeros((10, 4, 2), dtype=bool)
        b = np.zeros((10, 4, 3), dtype=bool)
        cfg = sparse_ab(1, 0, 0, 1, 0, 0)
        dual = dual_sparse_cycles(a, b, cfg)
        assert dual.executed_pairs == 0
        assert dual.cycles >= 1
