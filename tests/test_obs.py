"""Tests for :mod:`repro.obs` -- tracing, metrics, export, and reports.

The load-bearing guarantees:

* **determinism** -- traced results are identical to untraced results
  (serial and parallel, any worker count: spans never feed simulation
  inputs or cache keys), and two traced runs of the same command produce
  structurally identical span trees (ids/timestamps normalized away);
* **cost** -- the disabled path is a module-attribute check; no tracer
  object is allocated when tracing is off;
* **export** -- JSONL round-trips through the sink, Chrome trace-event
  JSON validates and round-trips losslessly back into span records;
* **metrics** -- fixed deterministic histogram buckets, Prometheus text
  rendering that a strict line parser accepts, and the CacheStats
  bridge splitting unified counters into per-tier series.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path

import pytest

from repro.api import Session
from repro.config import ModelCategory
from repro.dse.evaluate import EvalSettings, parse_design
from repro.obs import trace as trace_mod
from repro.obs.chrome import chrome_trace, spans_from_chrome, validate_chrome_trace
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    cache_metrics,
)
from repro.obs.report import render_summary, span_structure, summarize
from repro.obs.sink import read_trace, write_trace
from repro.obs.trace import (
    NOOP,
    NOOP_SPAN,
    Tracer,
    current_trace_id,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.runtime.cache import CacheStats
from repro.sim.engine import SimulationOptions

REPO_ROOT = Path(__file__).resolve().parent.parent
TINYCNN = str(REPO_ROOT / "examples" / "workloads" / "tinycnn.json")

CHEAP = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=7)
SETTINGS = EvalSettings(quick=True, options=CHEAP, networks=(TINYCNN,))
DESIGNS = ("Dense", "B(4,0,1,on)", "Griffin")


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    """Every test starts and ends with tracing off."""
    assert get_tracer() is NOOP, "a previous test leaked an active tracer"
    yield
    set_tracer(None)


def evaluate(tmp_path, workers=0, tracer=None):
    """One cheap evaluation through the session, optionally traced."""
    session = Session(cache_dir=str(tmp_path / "cache"), workers=workers)
    if tracer is None:
        return session.evaluate(
            [parse_design(name) for name in DESIGNS],
            (ModelCategory.B,),
            SETTINGS,
        )
    with tracing(tracer):
        return session.evaluate(
            [parse_design(name) for name in DESIGNS],
            (ModelCategory.B,),
            SETTINGS,
        )


# ---------------------------------------------------------------------------
# Tracer core


class TestTracer:
    def test_default_is_noop_and_costs_no_allocation(self):
        assert trace_mod.ACTIVE is NOOP
        assert NOOP.enabled is False
        assert NOOP.trace_id is None
        # The no-op span is one shared instance: no per-call garbage.
        assert NOOP.span("x") is NOOP_SPAN
        assert NOOP.span("y", parent_id=None, attr=1) is NOOP_SPAN
        with NOOP.span("z") as span:
            assert span.set(k=1) is span
            assert span.span_id is None
        assert NOOP.export() == []

    def test_span_nesting_and_attrs(self):
        tracer = Tracer(trace_id="t1")
        with tracer.span("outer", a=1) as outer:
            with tracer.span("inner") as inner:
                inner.set(b=2)
        records = tracer.export()
        assert [r["name"] for r in records] == ["outer", "inner"]
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["attrs"] == {"a": 1}
        assert by_name["inner"]["attrs"] == {"b": 2}
        assert outer.t1 >= inner.t1 >= inner.t0 >= outer.t0

    def test_explicit_parent_bypasses_stack_but_children_still_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("detached", parent_id=None) as detached:
                with tracer.span("child"):
                    pass
        by_name = {r["name"]: r for r in tracer.export()}
        assert by_name["detached"]["parent"] is None
        assert by_name["child"]["parent"] == detached.span_id

    def test_interleaved_exits_do_not_corrupt_the_stack(self):
        # Two detached spans on one thread, closed out of LIFO order --
        # the asyncio request-handler pattern.
        tracer = Tracer()
        a = tracer.span("a", parent_id=None).__enter__()
        b = tracer.span("b", parent_id=None).__enter__()
        a.__exit__(None, None, None)
        with tracer.span("child-of-b"):
            pass
        b.__exit__(None, None, None)
        by_name = {r["name"]: r for r in tracer.export()}
        assert by_name["child-of-b"]["parent"] == b.span_id

    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("in-thread") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread's span must not have nested under "main".
        assert seen["parent"] is None

    def test_absorb_remaps_ids_and_reparents_orphans(self):
        parent = Tracer()
        with parent.span("dispatch") as dispatch:
            pass
        worker = Tracer()
        with worker.span("chunk"):
            with worker.span("design"):
                pass
        parent.absorb(worker.export(), parent=dispatch)
        records = parent.export()
        ids = [r["id"] for r in records]
        assert len(ids) == len(set(ids)), "absorbed ids must not collide"
        by_name = {r["name"]: r for r in records}
        assert by_name["chunk"]["parent"] == dispatch.span_id
        assert by_name["design"]["parent"] == by_name["chunk"]["id"]
        # Timestamps were shifted to align with the dispatch span.
        assert by_name["chunk"]["t0"] == pytest.approx(dispatch.t0)

    def test_set_tracer_returns_previous_and_none_restores_noop(self):
        tracer = Tracer()
        assert set_tracer(tracer) is NOOP
        assert get_tracer() is tracer
        assert current_trace_id() == tracer.trace_id
        assert set_tracer(None) is tracer
        assert get_tracer() is NOOP
        assert current_trace_id() is None

    def test_tracing_context_manager_restores_on_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracing(tracer):
                assert get_tracer() is tracer
                raise RuntimeError("boom")
        assert get_tracer() is NOOP


# ---------------------------------------------------------------------------
# Metrics


PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.eE+-]+)$"
)


def assert_prometheus_text(text: str) -> None:
    """Every line is a comment or a well-formed sample line."""
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert PROM_SAMPLE.match(line), f"bad exposition line: {line!r}"


class TestMetrics:
    def test_counter_renders_zero_before_any_increment(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "help text")
        text = registry.render()
        assert "# HELP repro_t_total help text" in text
        assert "# TYPE repro_t_total counter" in text
        assert "repro_t_total 0" in text
        assert_prometheus_text(text)

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_labelled_counter_and_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("endpoint",))
        counter.inc(endpoint='POST "/run"\n')
        line = [
            l for l in registry.render().splitlines() if not l.startswith("#")
        ][0]
        assert line == 'c_total{endpoint="POST \\"/run\\"\\n"} 1'

    def test_label_set_mismatch_raises(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("tier",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(wrong="x")

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6.0

    def test_histogram_buckets_are_cumulative_and_deterministic(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        text = registry.render()
        assert 'h_ms_bucket{le="1"} 1' in text
        assert 'h_ms_bucket{le="10"} 3' in text
        assert 'h_ms_bucket{le="100"} 4' in text
        assert 'h_ms_bucket{le="+Inf"} 5' in text
        assert "h_ms_count 5" in text
        assert "h_ms_sum 560.5" in text
        assert_prometheus_text(text)

    def test_histogram_quantiles_interpolate_and_max_is_exact(self):
        hist = MetricsRegistry().histogram("h", buckets=(10.0, 100.0))
        for value in (1.0, 2.0, 3.0, 250.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["max"] == 250.0
        assert 0.0 < summary["p50"] <= 10.0
        # p90 lands in the overflow bucket, bounded by the exact max.
        assert 100.0 < summary["p90"] <= 250.0

    def test_empty_histogram_summary_is_zeros(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary == {"count": 0, "sum": 0.0, "max": 0.0, "p50": 0.0, "p90": 0.0}

    def test_default_bucket_edges_are_frozen(self):
        # The edges are part of the metrics contract: two runs observing
        # the same values must render the same text.
        assert DEFAULT_LATENCY_BUCKETS_MS[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] == 30000.0
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(DEFAULT_LATENCY_BUCKETS_MS)

    def test_registry_get_or_create_rejects_mismatches(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", labelnames=("a",))
        assert registry.counter("x_total", labelnames=("a",)) is counter
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="labels"):
            registry.counter("x_total", labelnames=("b",))

    def test_cache_metrics_splits_tiers_from_unified_counters(self):
        stats = CacheStats(
            hits=10, misses=4, puts=6, network_hits=7, network_misses=1, network_puts=2
        )
        registry = MetricsRegistry()
        cache_metrics(registry, stats)
        counter = registry.counter(
            "repro_cache_events_total", labelnames=("tier", "event")
        )
        assert counter.value(tier="network", event="hits") == 7
        assert counter.value(tier="layer", event="hits") == 3
        assert counter.value(tier="network", event="misses") == 1
        assert counter.value(tier="layer", event="misses") == 3
        assert counter.value(tier="layer", event="puts") == 4
        assert_prometheus_text(registry.render())


# ---------------------------------------------------------------------------
# Sink + Chrome export


class TestExport:
    def make_trace(self) -> Tracer:
        tracer = Tracer(trace_id="feedface00000001")
        with tracer.span("session.run", experiment="fig8"):
            with tracer.span("cache.network.get", key="k1", hit=True):
                pass
            with tracer.span("cache.layer.get", key="k2", hit=False):
                pass
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self.make_trace()
        path = tmp_path / "deep" / "t.jsonl"
        count = write_trace(tracer, str(path), meta={"command": "run"})
        assert count == 3
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["trace_id"] == "feedface00000001"
        assert header["spans"] == 3
        assert header["command"] == "run"
        meta, spans = read_trace(str(path))
        assert meta["trace_id"] == "feedface00000001"
        assert spans == tracer.export()

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError):
            read_trace(str(path))

    def test_chrome_round_trip_preserves_structure_and_attrs(self):
        tracer = self.make_trace()
        spans = tracer.export()
        document = chrome_trace(spans, meta={"trace_id": tracer.trace_id})
        events = validate_chrome_trace(document)
        assert len(events) == len(spans)
        assert all(event["ph"] == "X" for event in events)
        # Lossless: args carry span/parent ids, so spans rebuild exactly
        # up to microsecond timestamp rounding.
        _, rebuilt = spans_from_chrome(document)
        assert span_structure(rebuilt, with_attrs=True) == span_structure(
            spans, with_attrs=True
        )

    def test_chrome_document_is_json_serializable(self):
        document = chrome_trace(self.make_trace().export())
        json.dumps(document)

    def test_validate_rejects_schema_violations(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])  # not an object
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]}
            )  # complete event without dur


# ---------------------------------------------------------------------------
# Reports


class TestReport:
    def test_summary_cache_breakdown_and_critical_path(self):
        tracer = TestExport().make_trace()
        summary = summarize(tracer.export(), {"trace_id": tracer.trace_id})
        assert summary["spans"] == 3
        assert summary["roots"] == 1
        assert summary["cache"] == {
            "network": {"hits": 1, "misses": 0, "puts": 0},
            "layer": {"hits": 0, "misses": 1, "puts": 0},
        }
        assert summary["critical_path"][0]["name"] == "session.run"
        text = render_summary(summary)
        # CI greps this line -- keep the format stable.
        assert "cache spans: network 1h/0m, layer 0h/1m (puts: 0 network, 0 layer)" in text
        assert "critical path:" in text
        assert "top spans by self time:" in text

    def test_span_structure_normalizes_ids_and_times(self):
        def build() -> list:
            tracer = Tracer()
            with tracer.span("a"):
                with tracer.span("b", k=1):
                    pass
                with tracer.span("c"):
                    pass
            return tracer.export()

        first, second = build(), build()
        # Raw records differ (fresh timestamps each run) ...
        assert first != second
        # ... but the structural projection is identical.
        assert span_structure(first) == span_structure(second)
        assert span_structure(first, with_attrs=True) == (
            ("a", (), (("b", (("k", 1),), ()), ("c", (), ()))),
        )


# ---------------------------------------------------------------------------
# Golden determinism: traced == untraced, through the real session


class TestTracedDeterminism:
    def test_serial_traced_equals_untraced(self, tmp_path):
        untraced = evaluate(tmp_path / "a")
        traced = evaluate(tmp_path / "b", tracer=Tracer())
        assert traced.evaluations == untraced.evaluations
        assert json.dumps(
            [e.point(ModelCategory.B).speedup for e in traced.evaluations]
        ) == json.dumps(
            [e.point(ModelCategory.B).speedup for e in untraced.evaluations]
        )

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_traced_equals_serial_untraced(self, tmp_path, workers):
        serial = evaluate(tmp_path / "serial")
        traced = evaluate(tmp_path / "par", workers=workers, tracer=Tracer())
        assert traced.evaluations == serial.evaluations

    def test_two_traced_serial_runs_have_identical_span_trees(self, tmp_path):
        first = Tracer()
        evaluate(tmp_path / "a", tracer=first)
        second = Tracer()
        evaluate(tmp_path / "b", tracer=second)
        assert span_structure(first.export()) == span_structure(second.export())

    def test_two_traced_parallel_runs_have_identical_span_trees(self, tmp_path):
        # Worker completion order varies; absorb-in-chunk-order makes the
        # exported tree structurally deterministic anyway.
        first = Tracer()
        evaluate(tmp_path / "a", workers=2, tracer=first)
        second = Tracer()
        evaluate(tmp_path / "b", workers=2, tracer=second)
        structure = span_structure(first.export())
        assert structure == span_structure(second.export())
        names = {rec["name"] for rec in first.export()}
        assert "runner.parallel" in names
        assert "runner.chunk" in names
        assert "evaluate.design" in names

    def test_warm_run_trace_shows_network_tier_only(self, tmp_path):
        evaluate(tmp_path)  # cold: populate the cache
        tracer = Tracer()
        evaluate(tmp_path, tracer=tracer)  # warm, same cache dir
        summary = summarize(tracer.export())
        assert summary["cache"]["network"]["hits"] == len(DESIGNS)
        assert summary["cache"]["network"]["misses"] == 0
        # The obs-smoke acceptance bar: zero layer-tier lookups when warm.
        assert summary["cache"]["layer"] == {"hits": 0, "misses": 0, "puts": 0}

    def test_traced_error_envelope_carries_trace_id(self):
        from repro.errors import error_envelope

        untraced = error_envelope("invalid-request", "boom")
        assert "trace_id" not in untraced["error"]
        tracer = Tracer()
        with tracing(tracer):
            traced = error_envelope("invalid-request", "boom")
        assert traced["error"]["trace_id"] == tracer.trace_id
        # Identical apart from the id: the untraced shape never changed.
        del traced["error"]["trace_id"]
        assert traced == untraced
