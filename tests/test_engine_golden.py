"""Golden bitwise-equivalence lock on the simulation engine.

The vectorization passes over ``repro.sim.compaction`` / ``repro.sim.engine``
promise *bitwise-identical* results: same cycles, same energy, same cache
keys (``SIMULATION_KEY_VERSION`` / ``NETWORK_KEY_VERSION`` unchanged), so a
warm cache keeps returning values indistinguishable from a cold recompute.
This module pins that promise to a committed fixture generated on the
pre-vectorization engine: exact per-layer cycles and per-inference energy
for all six Table IV workloads across a representative configuration grid
(Sparse.A*/B*/AB* plus a dense run), serial and through the parallel
session path.

Floats are stored as ``repr`` strings, so equality below is genuine
bit-for-bit equality of the IEEE doubles, not an approximate comparison.

Regenerate (ONLY when simulation semantics intentionally change, together
with a ``SIMULATION_KEY_VERSION`` bump)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_engine_golden.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.config import (
    SPARSE_A_STAR,
    SPARSE_AB_STAR,
    SPARSE_B_STAR,
    ModelCategory,
    dense,
)
from repro.api import Session
from repro.dse.evaluate import EvalSettings
from repro.hw.energy import inference_energy
from repro.sim.engine import (
    NETWORK_KEY_VERSION,
    SIMULATION_KEY_VERSION,
    SimulationOptions,
    simulate_network,
)
from repro.workloads.registry import WORKLOADS

GOLDEN_PATH = Path(__file__).parent / "golden" / "engine_golden.json"

#: Light sampling that still exercises every engine path: segment sampling
#: (max_t_steps below the longest K), edge passes, the dual-sparse pipeline
#: and the single-sparse downgrades.
GOLDEN_OPTIONS = SimulationOptions(passes_per_gemm=2, max_t_steps=48)

#: The key versions the fixture was generated under.  If these fail, cached
#: results from older trees would be served for new semantics (or vice
#: versa) -- regenerate the fixture *and* bump the version, never just one.
GOLDEN_KEY_VERSIONS = {
    "simulation": "layer-sim-v2",
    "network": "network-sim-v2",
}

_CONFIGS = {
    "Dense": dense(),
    "Sparse.A*": SPARSE_A_STAR,
    "Sparse.B*": SPARSE_B_STAR,
    "Sparse.AB*": SPARSE_AB_STAR,
}


def _grid() -> list[tuple[str, str, ModelCategory]]:
    """(workload, config key, category) cases covering every engine path."""
    cases: list[tuple[str, str, ModelCategory]] = []
    for info in WORKLOADS:
        categories = info.categories()
        if ModelCategory.B in categories:
            cases.append((info.name, "Sparse.B*", ModelCategory.B))
        if ModelCategory.A in categories:
            cases.append((info.name, "Sparse.A*", ModelCategory.A))
        if ModelCategory.AB in categories:
            cases.append((info.name, "Sparse.AB*", ModelCategory.AB))
    # One dense-datapath run (trivial scheduling path, stall model off-path).
    cases.append(("AlexNet", "Dense", ModelCategory.DENSE))
    return cases


def _case_id(case: tuple[str, str, ModelCategory]) -> str:
    workload, config_key, category = case
    return f"{workload}|{config_key}|{category.value}"


def _simulate_case(case: tuple[str, str, ModelCategory]) -> dict:
    workload, config_key, category = case
    config = _CONFIGS[config_key]
    network = WORKLOADS.get(workload).network
    result = simulate_network(network, config, category, GOLDEN_OPTIONS)
    energy = inference_energy(result, config)
    return {
        "workload": workload,
        "config": config_key,
        "category": category.value,
        "cycles": repr(result.cycles),
        "dense_cycles": result.dense_cycles,
        "energy_mj": repr(energy.energy_mj),
        "layers": [
            {
                "name": layer.name,
                "cycles": repr(layer.cycles),
                "dense_cycles": layer.dense_cycles,
            }
            for layer in result.layers
        ],
    }


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} is missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_regenerate_golden_fixture():
    """Writes the fixture when REPRO_REGEN_GOLDEN=1; otherwise a no-op."""
    if os.environ.get("REPRO_REGEN_GOLDEN", "0") != "1":
        pytest.skip("set REPRO_REGEN_GOLDEN=1 to regenerate the fixture")
    cases = {_case_id(case): _simulate_case(case) for case in _grid()}
    payload = {
        "key_versions": {
            "simulation": SIMULATION_KEY_VERSION,
            "network": NETWORK_KEY_VERSION,
        },
        "options": GOLDEN_OPTIONS.to_dict(),
        "cases": cases,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_key_versions_unchanged():
    """The vectorized engine must keep serving the same cache namespace."""
    assert SIMULATION_KEY_VERSION == GOLDEN_KEY_VERSIONS["simulation"]
    assert NETWORK_KEY_VERSION == GOLDEN_KEY_VERSIONS["network"]
    golden = _load_golden()
    assert golden["key_versions"] == GOLDEN_KEY_VERSIONS
    assert golden["options"] == GOLDEN_OPTIONS.to_dict()


@pytest.mark.parametrize("case", _grid(), ids=_case_id)
def test_engine_matches_golden(case):
    """Every workload x config case reproduces the fixture bit-for-bit."""
    golden = _load_golden()
    expected = golden["cases"][_case_id(case)]
    actual = _simulate_case(case)
    assert actual["dense_cycles"] == expected["dense_cycles"]
    assert actual["cycles"] == expected["cycles"], (
        f"{_case_id(case)}: network cycles drifted "
        f"{expected['cycles']} -> {actual['cycles']}"
    )
    assert actual["energy_mj"] == expected["energy_mj"]
    assert len(actual["layers"]) == len(expected["layers"])
    for got, want in zip(actual["layers"], expected["layers"]):
        assert got == want, (
            f"{_case_id(case)}: layer {want['name']} drifted "
            f"{want['cycles']} -> {got['cycles']}"
        )


def test_parallel_session_matches_golden(tmp_path):
    """The parallel (process-pool) path returns the same golden cycles.

    Two workers fan the six B-category simulations out over the
    :class:`SweepRunner`; per-network cycles must equal both the serial
    session and the committed fixture exactly.
    """
    golden = _load_golden()
    networks = [info.name for info in WORKLOADS]
    settings = EvalSettings(options=GOLDEN_OPTIONS, networks=tuple(networks))
    with Session(cache_dir=tmp_path / "par", workers=2) as par, Session(
        cache_dir=tmp_path / "ser", workers=1
    ) as ser:
        par_out = par.evaluate(["Sparse.B*"], [ModelCategory.B], settings)
        ser_out = ser.evaluate(["Sparse.B*"], [ModelCategory.B], settings)
    assert par_out.evaluations == ser_out.evaluations
    # The geometric-mean speedup is a pure function of the per-network
    # cycles the fixture locks; recompute it from the golden records.
    import math

    ratios = []
    for name in networks:
        rec = golden["cases"][f"{name}|Sparse.B*|{ModelCategory.B.value}"]
        ratios.append(rec["dense_cycles"] / float(rec["cycles"]))
    expected = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    got = par_out.evaluations[0].speedup(ModelCategory.B)
    assert repr(got) == repr(expected)
