"""Tests for ``repro.lint`` -- the AST-based invariant checker.

Three layers of coverage:

* per-rule positive/negative fixtures on throwaway tmp files (never the
  live tree), including waiver parsing and placement;
* the key-manifest drift simulation: mutate an engine function body in a
  copied module set -> ``KEY001``; bump the key version or refresh the
  manifest -> clean; comment/docstring-only edits -> never drift;
* the real repo: ``run_lint()`` over all of ``src/`` is clean, and the
  committed ``key_manifest.json`` is exactly fresh (the acceptance gate
  CI enforces too).
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    MANIFEST_ENTRIES,
    canonical_source_hash,
    compute_manifest,
    known_codes,
    manifest_is_fresh,
    parse_waivers,
    refresh_manifest,
    run_lint,
)
from repro.lint.manifest import manifest_findings

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, source, name="snippet.py", codes=None):
    """Lint one out-of-tree fixture file (all file rules apply)."""
    path = tmp_path / name
    path.write_text(source)
    report = run_lint(REPO_ROOT, paths=[str(path)], codes=codes)
    return report.findings


class TestWaiverParsing:
    def test_own_line(self):
        waivers = parse_waivers("x = 1  # repro: lint-ok[DET001] timing only\n")
        assert waivers == {1: frozenset({"DET001"})}

    def test_standalone_comment_covers_next_line(self):
        source = "# repro: lint-ok[DET004] order irrelevant here\nx = 1\n"
        waivers = parse_waivers(source)
        assert waivers[1] == frozenset({"DET004"})
        assert waivers[2] == frozenset({"DET004"})

    def test_multiple_codes(self):
        waivers = parse_waivers("x = 1  # repro: lint-ok[DET001, LOCK001] why\n")
        assert waivers[1] == frozenset({"DET001", "LOCK001"})

    def test_no_blanket_waiver(self):
        assert parse_waivers("x = 1  # repro: lint-ok\n") == {}
        assert parse_waivers("x = 1  # repro: lint-ok[] oops\n") == {}


class TestDeterminismRules:
    def test_wall_clock_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import time\n\ndef f():\n    return time.time()\n"
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].line == 4

    def test_wall_clock_through_alias(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "from time import perf_counter as pc\n\ndef f():\n    return pc()\n",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_datetime_now_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "from datetime import datetime\n\ndef f():\n"
            "    return datetime.now()\n",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_global_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "import numpy as np\n\ndef f():\n    return np.random.rand(3)\n",
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_unseeded_constructor_flagged_seeded_passes(self, tmp_path):
        bad = lint_snippet(
            tmp_path,
            "import numpy as np\n\ndef f():\n"
            "    return np.random.default_rng()\n",
            name="bad_rng.py",
        )
        assert [f.rule for f in bad] == ["DET002"]
        good = lint_snippet(
            tmp_path,
            "import numpy as np\n\ndef f(seed):\n"
            "    return np.random.default_rng(seed)\n",
            name="good_rng.py",
        )
        assert good == []

    def test_random_random_module_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "import random\n\ndef f():\n    return random.random()\n"
        )
        assert [f.rule for f in findings] == ["DET002"]
        assert lint_snippet(
            tmp_path,
            "import random\n\ndef f(seed):\n    return random.Random(seed)\n",
            name="seeded.py",
        ) == []

    def test_set_iteration_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(xs):\n    for x in set(xs):\n        print(x)\n"
        )
        assert [f.rule for f in findings] == ["DET003"]

    def test_list_of_set_flagged_sorted_passes(self, tmp_path):
        assert [
            f.rule
            for f in lint_snippet(
                tmp_path, "def f(xs):\n    return list(set(xs))\n", name="b.py"
            )
        ] == ["DET003"]
        assert lint_snippet(
            tmp_path, "def f(xs):\n    return sorted(set(xs))\n", name="g.py"
        ) == []

    def test_set_membership_not_flagged(self, tmp_path):
        assert lint_snippet(
            tmp_path, "def f(x, xs):\n    return x in set(xs)\n"
        ) == []

    def test_set_comprehension_source_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(xs):\n    return [x for x in {1, 2, 3}]\n"
        )
        assert [f.rule for f in findings] == ["DET003"]

    def test_listdir_flagged_sorted_passes(self, tmp_path):
        assert [
            f.rule
            for f in lint_snippet(
                tmp_path,
                "import os\n\ndef f(p):\n    return os.listdir(p)\n",
                name="b.py",
            )
        ] == ["DET004"]
        assert lint_snippet(
            tmp_path,
            "import os\n\ndef f(p):\n    return sorted(os.listdir(p))\n",
            name="g.py",
        ) == []

    def test_path_glob_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(p):\n    return [x for x in p.glob('*.json')]\n",
        )
        assert [f.rule for f in findings] == ["DET004"]

    def test_waiver_suppresses_finding(self, tmp_path):
        source = (
            "def f(p):\n"
            "    return list(p.iterdir())  # repro: lint-ok[DET004] logged only\n"
        )
        assert lint_snippet(tmp_path, source) == []

    def test_waiver_for_wrong_code_does_not_suppress(self, tmp_path):
        source = (
            "def f(p):\n"
            "    return list(p.iterdir())  # repro: lint-ok[DET001] wrong code\n"
        )
        assert [f.rule for f in lint_snippet(tmp_path, source)] == ["DET004"]

    def test_rule_filter_restricts(self, tmp_path):
        source = (
            "import time, os\n\ndef f(p):\n"
            "    return time.time(), os.listdir(p)\n"
        )
        only_clock = lint_snippet(tmp_path, source, codes={"DET001"})
        assert [f.rule for f in only_clock] == ["DET001"]

    def test_unknown_rule_code_raises(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lint(REPO_ROOT, codes={"NOPE999"})


LOCKED_CLASS = """\
import threading

class Telemetry:
    def __init__(self):
        self._state_lock = threading.RLock()
        self.count = 0

    def unsafe_bump(self):
        self.count += 1

    def safe_bump(self):
        with self._state_lock:
            self.count += 1

    def waived_bump(self):
        self.count += 1  # repro: lint-ok[LOCK001] single-threaded test hook

class NoLock:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
"""


class TestLockHygiene:
    def test_unlocked_write_flagged_locked_and_waived_pass(self, tmp_path):
        findings = lint_snippet(tmp_path, LOCKED_CLASS)
        assert [f.rule for f in findings] == ["LOCK001"]
        assert "Telemetry.unsafe_bump" in findings[0].message
        assert findings[0].line == 9

    def test_lockless_class_exempt(self, tmp_path):
        source = (
            "class NoLock:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        )
        assert lint_snippet(tmp_path, source) == []

    def test_init_writes_exempt(self, tmp_path):
        source = (
            "import threading\n\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.a = 1\n"
            "        self.b = 2\n"
        )
        assert lint_snippet(tmp_path, source) == []

    def test_tuple_assignment_under_lock_passes(self, tmp_path):
        source = (
            "import threading\n\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.pool = None\n"
            "    def close(self):\n"
            "        with self._lock:\n"
            "            pool, self.pool = self.pool, None\n"
            "        return pool\n"
        )
        assert lint_snippet(tmp_path, source) == []


def make_mini_repo(tmp_path):
    """Copy just the manifest module sets (plus version module) to tmp."""
    root = tmp_path / "repo"
    modules = {
        module
        for entry in MANIFEST_ENTRIES.values()
        for module in entry["modules"]
    } | {entry["version_module"] for entry in MANIFEST_ENTRIES.values()}
    for relpath in sorted(modules):
        dest = root / relpath
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO_ROOT / relpath, dest)
    manifest_path = root / "src/repro/lint/key_manifest.json"
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    refresh_manifest(root, manifest_path)
    return root, manifest_path


class TestKeyManifest:
    def test_fresh_mini_repo_is_clean(self, tmp_path):
        root, manifest_path = make_mini_repo(tmp_path)
        assert list(manifest_findings(root, manifest_path)) == []

    def test_engine_body_mutation_without_bump_fails(self, tmp_path):
        root, manifest_path = make_mini_repo(tmp_path)
        engine = root / "src/repro/sim/engine.py"
        source = engine.read_text()
        # Inject a real semantic change into a function body.
        needle = "def simulate_layer("
        assert needle in source
        mutated = source.replace(
            needle, "def _drifted():\n    return 41\n\n\ndef simulate_layer(", 1
        )
        engine.write_text(mutated)
        findings = list(manifest_findings(root, manifest_path))
        # engine.py is in both module sets, so both key versions drift.
        symbols = {f.message.split()[3] for f in findings}
        assert all(f.rule == "KEY001" for f in findings)
        assert symbols == {"SIMULATION_KEY_VERSION", "NETWORK_KEY_VERSION"}
        assert all(f.path == "src/repro/sim/engine.py" for f in findings)

    def test_key_version_bump_acknowledges_drift(self, tmp_path):
        # Mutate a module only the simulation set contains, so exactly
        # one key version drifts -- then a bump of that version passes.
        root, manifest_path = make_mini_repo(tmp_path)
        compaction = root / "src/repro/sim/compaction.py"
        compaction.write_text(
            compaction.read_text() + "\n\ndef _drifted():\n    return 41\n"
        )
        findings = list(manifest_findings(root, manifest_path))
        assert [f.rule for f in findings] == ["KEY001"]
        assert "SIMULATION_KEY_VERSION" in findings[0].message
        engine = root / "src/repro/sim/engine.py"
        engine.write_text(
            engine.read_text().replace(
                'SIMULATION_KEY_VERSION = "layer-sim-v2"',
                'SIMULATION_KEY_VERSION = "layer-sim-v3"',
            )
        )
        assert list(manifest_findings(root, manifest_path)) == []

    def test_refresh_acknowledges_bitwise_identical_rewrite(self, tmp_path):
        root, manifest_path = make_mini_repo(tmp_path)
        engine = root / "src/repro/sim/engine.py"
        engine.write_text(
            engine.read_text().replace(
                "def simulate_layer(",
                "def _identical_helper():\n    return None\n\n\n"
                "def simulate_layer(",
                1,
            )
        )
        assert list(manifest_findings(root, manifest_path)) != []
        refresh_manifest(root, manifest_path)
        assert list(manifest_findings(root, manifest_path)) == []

    def test_comment_and_docstring_edits_never_drift(self, tmp_path):
        root, manifest_path = make_mini_repo(tmp_path)
        engine = root / "src/repro/sim/engine.py"
        source = engine.read_text()
        engine.write_text(
            '"""Completely rewritten module docstring."""\n'
            "# a brand new comment\n" + source.split('"""', 2)[2]
            if source.startswith('"""')
            else "# a brand new comment\n" + source
        )
        assert list(manifest_findings(root, manifest_path)) == []

    def test_missing_manifest_is_key002(self, tmp_path):
        root, manifest_path = make_mini_repo(tmp_path)
        manifest_path.unlink()
        findings = list(manifest_findings(root, manifest_path))
        assert [f.rule for f in findings] == ["KEY002"]

    def test_corrupt_manifest_is_key002(self, tmp_path):
        root, manifest_path = make_mini_repo(tmp_path)
        manifest_path.write_text("{not json")
        findings = list(manifest_findings(root, manifest_path))
        assert [f.rule for f in findings] == ["KEY002"]

    def test_canonical_hash_ignores_formatting_and_docstrings(self):
        a = 'def f(x):\n    """doc."""\n    return x + 1\n'
        b = "# comment\ndef f(x):\n    return (x + 1)\n"
        c = "def f(x):\n    return x + 2\n"
        assert canonical_source_hash(a) == canonical_source_hash(b)
        assert canonical_source_hash(a) != canonical_source_hash(c)


class TestRealRepo:
    def test_whole_repo_lints_clean(self):
        report = run_lint(REPO_ROOT)
        assert report.findings == [], "\n".join(
            f.format() for f in report.findings
        )
        assert report.files_checked > 50

    def test_committed_manifest_is_exactly_fresh(self):
        # Stronger than KEY001 (which lets a just-bumped version pass):
        # a stale committed manifest cannot merge.
        assert manifest_is_fresh(REPO_ROOT)

    def test_every_registered_code_is_documented_in_lint_md(self):
        catalogue = (REPO_ROOT / "docs" / "lint.md").read_text()
        for code in known_codes():
            assert code in catalogue


class TestLintCli:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "repro lint: clean" in out

    def test_json_clean_payload(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["v"] == 1

    def test_findings_exit_one_and_envelope(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main(["lint", "--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["kind"] == "lint-findings"
        assert payload["error"]["v"] == 1
        findings = payload["error"]["detail"]["findings"]
        assert findings[0]["rule"] == "DET001"
        assert findings[0]["line"] == 4
        assert findings[0]["path"].endswith("bad.py")
        assert "time.time" in findings[0]["message"]

    def test_human_findings_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import os\n\ndef f(p):\n    return os.listdir(p)\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert ": DET004 " in out
        assert "1 finding(s)" in out

    def test_rule_filter_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time, os\n\ndef f(p):\n"
            "    return time.time(), os.listdir(p)\n"
        )
        assert main(["lint", "--json", "--rule", "DET004", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in payload["error"]["detail"]["findings"]}
        assert rules == {"DET004"}

    def test_refresh_manifest_verb(self, capsys):
        # The repo manifest is fresh, so refreshing is a no-op rewrite.
        before = (
            REPO_ROOT / "src/repro/lint/key_manifest.json"
        ).read_text()
        assert main(["lint", "refresh-manifest"]) == 0
        assert "refreshed" in capsys.readouterr().out
        after = (REPO_ROOT / "src/repro/lint/key_manifest.json").read_text()
        assert after == before

    def test_refresh_manifest_rejects_extra_args(self, capsys):
        assert main(["lint", "refresh-manifest", "src"]) == 2
        assert "takes no paths" in capsys.readouterr().err
