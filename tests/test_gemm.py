"""Tests for the GEMM substrate: layers, tiling, im2col."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PAPER_CORE
from repro.gemm.im2col import conv_output_size, im2col_mask
from repro.gemm.layers import (
    AttentionSpec,
    Conv2DSpec,
    FeedForwardSpec,
    GemmShape,
    LinearSpec,
)
from repro.gemm.tiling import tile_grid


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(m=2, k=3, n=4, repeats=5).macs == 120

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GemmShape(m=0, k=1, n=1)

    def test_channels_default_is_k(self):
        assert GemmShape(m=1, k=64, n=1).k_channels == 64
        assert GemmShape(m=1, k=64, n=1, channels=8).k_channels == 8

    def test_channels_bounds(self):
        with pytest.raises(ValueError):
            GemmShape(m=1, k=4, n=1, channels=8)


class TestLayers:
    def test_conv_lowering(self):
        conv = Conv2DSpec(
            name="c", in_channels=64, out_channels=128, kernel=3,
            input_hw=56, stride=1, padding=1,
        )
        gemm = conv.gemms()[0]
        assert (gemm.m, gemm.k, gemm.n) == (3136, 576, 128)
        assert gemm.channels == 64

    def test_strided_conv_output(self):
        conv = Conv2DSpec(
            name="c", in_channels=3, out_channels=64, kernel=7,
            input_hw=224, stride=2, padding=3,
        )
        assert conv.output_hw == 112

    def test_grouped_conv_repeats(self):
        conv = Conv2DSpec(
            name="dw", in_channels=32, out_channels=32, kernel=3,
            input_hw=112, stride=1, padding=1, groups=32,
        )
        gemm = conv.gemms()[0]
        assert gemm.repeats == 32
        assert gemm.k == 9 and gemm.n == 1

    def test_grouped_conv_validation(self):
        with pytest.raises(ValueError):
            Conv2DSpec(name="bad", in_channels=10, out_channels=10, kernel=3,
                       input_hw=8, groups=3)

    def test_linear(self):
        fc = LinearSpec(name="fc", in_features=2048, out_features=1000)
        gemm = fc.gemms()[0]
        assert (gemm.m, gemm.k, gemm.n) == (1, 2048, 1000)

    def test_attention_gemm_count_and_macs(self):
        attn = AttentionSpec(name="a", hidden=768, heads=12, seq_len=64)
        gemms = attn.gemms()
        assert len(gemms) == 6
        proj_macs = 4 * 64 * 768 * 768
        dyn_macs = 2 * 12 * 64 * 64 * 64
        assert attn.macs == proj_macs + dyn_macs

    def test_feed_forward(self):
        ffn = FeedForwardSpec(name="f", hidden=768, intermediate=3072, seq_len=64)
        assert ffn.macs == 2 * 64 * 768 * 3072


class TestTiling:
    def test_dense_cycles(self):
        grid = tile_grid(GemmShape(m=8, k=160, n=32), PAPER_CORE)
        assert grid.m_tiles == 2 and grid.n_tiles == 2 and grid.t_steps == 10
        assert grid.dense_cycles == 2 * 2 * 10

    def test_edge_tiles(self):
        grid = tile_grid(GemmShape(m=5, k=17, n=17), PAPER_CORE)
        assert grid.m_tiles == 2 and grid.n_tiles == 2 and grid.t_steps == 2
        assert grid.edge_m == 1 and grid.edge_n == 1

    def test_utilization_perfect_fit(self):
        grid = tile_grid(GemmShape(m=4, k=16, n=16), PAPER_CORE)
        assert grid.utilization == pytest.approx(1.0)

    def test_utilization_with_waste(self):
        grid = tile_grid(GemmShape(m=1, k=16, n=16), PAPER_CORE)
        assert grid.utilization == pytest.approx(0.25)

    def test_repeats_multiply(self):
        grid = tile_grid(GemmShape(m=4, k=16, n=16, repeats=7), PAPER_CORE)
        assert grid.total_passes == 7
        assert grid.dense_cycles == 7


class TestIm2col:
    def _naive(self, fmap, kernel, stride, padding):
        c, h, w = fmap.shape
        out = conv_output_size(h, kernel, stride, padding)
        padded = np.zeros((c, h + 2 * padding, w + 2 * padding), dtype=bool)
        padded[:, padding:padding + h, padding:padding + w] = fmap
        rows = []
        for oy in range(out):
            for ox in range(out):
                patch = padded[:, oy * stride:oy * stride + kernel,
                               ox * stride:ox * stride + kernel]
                rows.append(patch.reshape(-1))
        return np.array(rows)

    @pytest.mark.parametrize("kernel,stride,padding", [(3, 1, 1), (5, 2, 2), (1, 1, 0)])
    def test_matches_naive(self, kernel, stride, padding):
        rng = np.random.default_rng(0)
        fmap = rng.random((4, 10, 10)) < 0.5
        fast = im2col_mask(fmap, kernel, stride, padding)
        naive = self._naive(fmap, kernel, stride, padding)
        np.testing.assert_array_equal(fast, naive)

    def test_shape(self):
        fmap = np.ones((3, 8, 8), dtype=bool)
        out = im2col_mask(fmap, 3, 1, 1)
        assert out.shape == (64, 27)

    def test_sparsity_is_preserved_in_ratio(self):
        rng = np.random.default_rng(1)
        fmap = rng.random((8, 16, 16)) < 0.3
        out = im2col_mask(fmap, 3, 1, 1)
        # Interior elements replicate 9x; border effects shift the ratio a
        # little, but it stays close to the feature-map density.
        assert out.mean() == pytest.approx(0.3, abs=0.05)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            im2col_mask(np.ones((4, 4), dtype=bool), 3)
        with pytest.raises(ValueError):
            im2col_mask(np.ones((1, 4, 5), dtype=bool), 3)

    def test_conv_output_size_validation(self):
        with pytest.raises(ValueError):
            conv_output_size(4, 7, 1, 0)


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(1, 300),
    k=st.integers(1, 600),
    n=st.integers(1, 300),
)
def test_tiling_covers_exactly(m, k, n):
    """Pass structure covers the GEMM with no gap and bounded waste."""
    grid = tile_grid(GemmShape(m=m, k=k, n=n), PAPER_CORE)
    assert grid.m_tiles * PAPER_CORE.m0 >= m > (grid.m_tiles - 1) * PAPER_CORE.m0
    assert grid.n_tiles * PAPER_CORE.n0 >= n > (grid.n_tiles - 1) * PAPER_CORE.n0
    assert grid.t_steps * PAPER_CORE.k0 >= k > (grid.t_steps - 1) * PAPER_CORE.k0
    assert 0 < grid.utilization <= 1.0
