"""Tests for the SRAM/DRAM memory models."""

import pytest

from repro.memory.dram import DramModel, dram_stall_factor, layer_traffic_bytes
from repro.memory.sram import (
    BASELINE_ASRAM,
    BASELINE_BSRAM,
    SramConfig,
    SramModel,
    bank_conflict_stall_fraction,
)


class TestSramConfig:
    def test_table_iv_baseline(self):
        assert BASELINE_ASRAM.capacity_kib == 512
        assert BASELINE_ASRAM.bandwidth_gbps == pytest.approx(51.2)
        assert BASELINE_BSRAM.capacity_kib == 32
        assert BASELINE_BSRAM.bandwidth_gbps == pytest.approx(204.8)

    def test_asram_feeds_exactly_one_dense_slice(self):
        # 51.2 GB/s at 800 MHz is 64 B/cycle = M0 x K0 INT8 operands.
        assert BASELINE_ASRAM.words_per_cycle(800.0) == pytest.approx(64.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SramConfig(capacity_kib=0, bandwidth_gbps=1)
        with pytest.raises(ValueError):
            SramConfig(capacity_kib=1, bandwidth_gbps=-1)


class TestBankConflicts:
    def test_no_conflicts_below_one_request(self):
        assert bank_conflict_stall_fraction(0.5) == 0.0
        assert bank_conflict_stall_fraction(1.0) == 0.0

    def test_fraction_grows_with_requests(self):
        fractions = [bank_conflict_stall_fraction(r) for r in (2, 4, 8, 14)]
        assert all(f >= 0 for f in fractions)
        assert fractions == sorted(fractions)

    def test_fraction_stays_small(self):
        # The paper's pipeline "considers" bank conflicts; they never
        # dominate (a few percent).
        assert bank_conflict_stall_fraction(8.0, banks=16) < 0.1

    def test_single_bank_never_conflicts(self):
        assert bank_conflict_stall_fraction(4.0, banks=1) == 0.0


class TestSramModel:
    def test_no_stall_within_provisioning(self):
        model = SramModel(bw_scale_a=5.0, bw_scale_b=5.0)
        assert model.stall_fraction(1.0, 1.0) == pytest.approx(0.0, abs=0.02)

    def test_excess_fetch_stalls(self):
        model = SramModel(bw_scale_a=2.0, bw_scale_b=2.0)
        assert model.stall_fraction(4.0, 1.0) > 0.9


class TestDram:
    def test_bytes_per_cycle(self):
        assert DramModel(50.0).bytes_per_cycle(800.0) == pytest.approx(62.5)

    def test_no_stall_when_under_budget(self):
        assert dram_stall_factor(1000.0, 1000.0, 800.0) == 1.0

    def test_stall_scales_with_deficit(self):
        # 125 B/cycle required vs 62.5 available -> 2x stretch.
        factor = dram_stall_factor(125_000.0, 1000.0, 800.0)
        assert factor == pytest.approx(2.0)

    def test_zero_cycles_guard(self):
        assert dram_stall_factor(100.0, 0.0, 800.0) == 1.0

    def test_traffic_compression(self):
        dense = layer_traffic_bytes(10, 100, 20, weight_density=1.0)
        sparse = layer_traffic_bytes(10, 100, 20, weight_density=0.2, metadata_bits=4)
        assert sparse < dense
        # A and C are unchanged; B shrinks to density x (1 + meta/8).
        expected = 10 * 100 + 100 * 20 * 0.2 * 1.5 + 10 * 20
        assert sparse == pytest.approx(expected)
