"""Tests for the analytical cycle model vs the simulator (paper Sec. V)."""

import numpy as np
import pytest

from repro.config import sparse_a, sparse_b
from repro.sim.analytical import analytical_speedup, analytical_tile_cycles
from repro.sim.compaction import compact_schedule


class TestTileModel:
    def test_zero_steps(self):
        assert analytical_tile_cycles(0, np.full((4, 4), 0.5), 2) == 0.0

    def test_dense_tile_is_t(self):
        cycles = analytical_tile_cycles(64, np.ones((16, 16)), 3)
        assert cycles == pytest.approx(64.0)

    def test_window_floor(self):
        cycles = analytical_tile_cycles(64, np.full((16, 16), 0.01), 3)
        assert cycles >= 64 / 4

    def test_pooling_reduces_cycles(self):
        rng = np.random.default_rng(0)
        dens = np.clip(0.2 * rng.gamma(2, 0.5, (16, 16)), 0, 1)
        alone = analytical_tile_cycles(64, dens, 4, 0, 0)
        pooled = analytical_tile_cycles(64, dens, 4, 1, 1)
        assert pooled <= alone

    @pytest.mark.parametrize("density", [0.1, 0.25, 0.5])
    @pytest.mark.parametrize("d1", [2, 4, 7])
    def test_tracks_simulator_on_iid_tiles(self, density, d1):
        rng = np.random.default_rng(42)
        t = 96
        sim = []
        for _ in range(3):
            mask = rng.random((t, 16, 16)) < density
            sim.append(compact_schedule(mask, d1, 0, 0).cycles)
        model = analytical_tile_cycles(t, np.full((16, 16), density), d1)
        assert model == pytest.approx(np.mean(sim), rel=0.25)


class TestSpeedupEstimate:
    def test_dense_inputs_are_one(self):
        assert analytical_speedup(sparse_b(4, 0, 1), None, None) == 1.0
        assert analytical_speedup(sparse_b(4, 0, 1), 1.0, 1.0) == 1.0

    def test_unsupported_side_ignored(self):
        assert analytical_speedup(sparse_b(4, 0, 1), None, 0.5) == 1.0

    def test_sparser_is_faster(self):
        s_80 = analytical_speedup(sparse_b(4, 0, 1, shuffle=True), 0.2, None)
        s_50 = analytical_speedup(sparse_b(4, 0, 1, shuffle=True), 0.5, None)
        assert s_80 > s_50 > 1.0

    def test_deeper_window_is_faster(self):
        shallow = analytical_speedup(sparse_b(2, 0, 0, shuffle=True), 0.15, None)
        deep = analytical_speedup(sparse_b(6, 0, 0, shuffle=True), 0.15, None)
        assert deep > shallow

    def test_shuffle_helps_heterogeneous(self):
        off = analytical_speedup(sparse_b(6, 0, 0), 0.2, None)
        on = analytical_speedup(sparse_b(6, 0, 0, shuffle=True), 0.2, None)
        assert on > off

    def test_a_side_estimate(self):
        s = analytical_speedup(sparse_a(2, 1, 0, shuffle=True), None, 0.5)
        assert 1.2 < s < 2.2

    def test_dual_combines(self):
        from repro.config import sparse_ab

        dual = analytical_speedup(sparse_ab(2, 0, 0, 2, 0, 1, shuffle=True), 0.2, 0.5)
        single = analytical_speedup(sparse_b(2, 0, 1, shuffle=True), 0.2, None)
        assert dual > single
