"""Tests for the calibrated analytical surrogate (`repro.surrogate`).

The load-bearing guarantees:

* **error budget** -- the committed golden constants hold every
  (regime, space, workload) cell of the calibration matrix under the
  hard `ERROR_BUDGET` ceiling, and `check_constants` re-derives that from
  the constants document alone (pure arithmetic, no engine, no cache), so
  the golden cannot silently rot; a `SIMULATION_KEY_VERSION` bump, a
  tampered coefficient, a drifted workload, or a changed feature basis
  are all rejected loudly;
* **deterministic calibration** -- the fit is a pure function of the
  corpus content: fitting twice, fitting a shuffled corpus, or building
  the corpus through any worker count produces bitwise-identical
  constants (the corpus is canonically ordered by workload fingerprint,
  so cache-read order cannot leak into the solve);
* **multi-fidelity search** -- the surrogate-screened strategy recovers
  each paper space's Table VI starred point spending <= 10% of the grid
  on exact evaluations, bitwise-deterministically across runs and worker
  counts, and composes with the archive checkpoint/resume machinery.

The end-to-end assertions share one session-scoped persistent cache with
the calibration-corpus build (same options, same networks), so each
(config, network) pair is simulated at most once per test run.
"""

import json
import random

import pytest

from repro.api import Session
from repro.config import ModelCategory, parse_notation
from repro.dse.evaluate import EvalSettings
from repro.search import SearchSpec, SurrogateScreenedSearch, paper_space
from repro.search.strategy import STRATEGY_KINDS, build_strategy
from repro.sim.engine import SIMULATION_KEY_VERSION, SimulationOptions
from repro.surrogate import (
    ANY_WORKLOAD,
    Corpus,
    ERROR_BUDGET,
    REGIME_OPTIONS,
    SurrogateConstants,
    SurrogateModel,
    build_corpus,
    check_constants,
    fit_constants,
    load_constants,
    save_constants,
)
from repro.surrogate.model import corrected_cycles, gemm_terms
from repro.surrogate.store import FamilyConstants
from repro.workloads.registry import parse_workload

CHEAP = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=7)

#: Per-space single-benchmark settings (same choices as test_search.py);
#: CHEAP is exactly the golden's calibrated ``quick`` regime.
SPACE_SETTINGS = {
    "b": EvalSettings(quick=True, options=CHEAP, networks=("BERT",)),
    "a": EvalSettings(quick=True, options=CHEAP, networks=("AlexNet",)),
    "ab": EvalSettings(quick=True, options=CHEAP, networks=("MobileNetV2",)),
}

#: Multi-fidelity exact-evaluation budgets: <= 10% of each space's grid
#: (42 / 34 / 72 feasible configs respectively).
BUDGETS = {"b": 4, "a": 3, "ab": 7}


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    """One persistent cache for every exact evaluation in this module."""
    return Session(cache_dir=tmp_path_factory.mktemp("surrogate-cache"))


@pytest.fixture(scope="module")
def golden():
    """The committed fitted constants (also version-checks them)."""
    return load_constants()


@pytest.fixture(scope="module")
def model(golden):
    return SurrogateModel(golden)


def _sparse_terms():
    """GemmTerms of a real sparse GEMM (skips any dense leading GEMMs)."""
    workload = parse_workload("BERT")
    config = parse_notation("B(2,2,1,on)")
    for layer in workload.network.layers:
        for gemm in layer.spec.gemms():
            terms = gemm_terms(gemm, layer, config, ModelCategory.B, CHEAP)
            if terms is not None:
                return terms
    raise AssertionError("BERT has no sparse GEMM under DNN.B?")


# ----------------------------------------------------------------------
# The error budget, locked against the committed golden.
# ----------------------------------------------------------------------


class TestErrorBudget:
    def test_golden_covers_the_calibration_matrix(self, golden):
        assert golden.simulation_key_version == SIMULATION_KEY_VERSION
        assert sorted(golden.corpus["regimes"]) == ["default", "quick"]
        assert list(golden.corpus["spaces"]) == ["a", "ab", "b"]
        # Every recorded regime matches the shipped regime definitions.
        for name, payload in golden.corpus["regimes"].items():
            assert payload == REGIME_OPTIONS[name].to_dict()
        # Both regimes report on every (space, workload) pairing.
        per_regime = {}
        for row in golden.report:
            per_regime.setdefault(row["regime"], set()).add(
                (row["space"], row["workload"])
            )
        assert per_regime["default"] == per_regime["quick"]
        assert len(per_regime["default"]) >= 10  # Table IV suite x 3 spaces

    def test_recorded_errors_are_within_budget(self, golden):
        for row in golden.report:
            ceiling = ERROR_BUDGET[row["regime"]]
            assert row["max_error"] <= ceiling, (
                f"{row['regime']}/{row['space']}/{row['workload']} recorded "
                f"{row['max_error']:.2%} > {ceiling:.0%}"
            )
            assert row["mean_error"] <= row["max_error"]

    def test_check_constants_rederives_every_cell(self, golden):
        # Pure arithmetic over the committed document: no engine, no cache.
        lines = check_constants(golden)
        assert len(lines) == len(golden.report)
        assert all(line.endswith("ok") for line in lines)

    def test_tightened_budget_trips_the_check(self, golden):
        one_row = SurrogateConstants(
            simulation_key_version=golden.simulation_key_version,
            families=golden.families,
            corpus=golden.corpus,
            report=(golden.report[0],),
        )
        with pytest.raises(ValueError, match="exceeds the"):
            check_constants(one_row, budget={"default": 1e-12, "quick": 1e-12})

    def test_tampered_constants_are_detected(self, golden):
        tampered = SurrogateConstants(
            simulation_key_version=golden.simulation_key_version,
            families=tuple(
                FamilyConstants(
                    regime=fam.regime,
                    family=fam.family,
                    workload=fam.workload,
                    feature_names=fam.feature_names,
                    theta=(fam.theta[0] + 0.5,) + fam.theta[1:],
                )
                for fam in golden.families
            ),
            corpus=golden.corpus,
            report=(golden.report[0],),
        )
        with pytest.raises(ValueError, match="surrogate error budget check"):
            check_constants(tampered)

    def test_drifted_workload_fingerprint_is_detected(self, golden):
        doctored = SurrogateConstants(
            simulation_key_version=golden.simulation_key_version,
            families=golden.families,
            corpus={
                **dict(golden.corpus),
                "workloads": {
                    **golden.corpus["workloads"],
                    "BERT": "not-the-real-fingerprint",
                },
            },
            report=golden.report,
        )
        with pytest.raises(ValueError, match="changed since the fit"):
            check_constants(doctored)


class TestConstantsPersistence:
    def test_version_bump_invalidates_the_golden(self, tmp_path, golden):
        stale = golden.to_dict()
        stale["simulation_key_version"] = "0.0-stale"
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        with pytest.raises(ValueError, match="stale constants"):
            load_constants(path)

    def test_missing_file_names_the_fit_command(self, tmp_path):
        with pytest.raises(ValueError, match="repro surrogate fit"):
            load_constants(tmp_path / "absent.json")

    def test_corrupt_json_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_constants(path)

    def test_unknown_format_version_is_rejected(self, tmp_path, golden):
        data = golden.to_dict()
        data["format_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="format version"):
            load_constants(path)

    def test_save_load_round_trip(self, tmp_path, golden):
        path = save_constants(golden, tmp_path / "copy.json")
        assert load_constants(path).to_dict() == golden.to_dict()


# ----------------------------------------------------------------------
# Model semantics (pure arithmetic; no engine).
# ----------------------------------------------------------------------


class TestModelSemantics:
    def test_regime_matching_is_exact(self, model):
        assert model.regime_for(REGIME_OPTIONS["quick"]) == "quick"
        assert model.regime_for(REGIME_OPTIONS["default"]) == "default"
        off_regime = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=8)
        with pytest.raises(ValueError, match="not calibrated"):
            model.regime_for(off_regime)

    def test_unseen_workload_falls_back_to_pooled_vector(self, golden):
        fam = golden.family("quick", "b", "no-such-fingerprint")
        assert fam.workload == ANY_WORKLOAD
        with pytest.raises(KeyError, match="no fitted constants"):
            golden.family("quick", "zz")

    def test_calibrated_workload_gets_its_own_vector(self, golden):
        fingerprint = golden.corpus["workloads"]["BERT"]
        assert parse_workload("BERT").fingerprint == fingerprint
        fam = golden.family("quick", "b", fingerprint)
        assert fam.workload == fingerprint

    def test_feature_basis_mismatch_is_refused(self):
        terms = _sparse_terms()
        mismatched = FamilyConstants(
            regime="quick",
            family=terms.family,
            workload=ANY_WORKLOAD,
            feature_names=terms.feature_names[:-1],
            theta=(0.0,) * (len(terms.feature_names) - 1),
        )
        with pytest.raises(ValueError, match="different feature basis"):
            corrected_cycles(terms, mismatched)

    def test_correction_respects_the_engine_envelope(self):
        terms = _sparse_terms()
        huge = FamilyConstants(
            regime="quick",
            family=terms.family,
            workload=ANY_WORKLOAD,
            feature_names=terms.feature_names,
            theta=(50.0,) + (0.0,) * (len(terms.feature_names) - 1),
        )
        assert corrected_cycles(terms, huge) == float(terms.dense_cycles)
        tiny = FamilyConstants(
            regime="quick",
            family=terms.family,
            workload=ANY_WORKLOAD,
            feature_names=terms.feature_names,
            theta=(-50.0,) + (0.0,) * (len(terms.feature_names) - 1),
        )
        assert corrected_cycles(terms, tiny) == terms.min_cycles

    def test_dense_category_is_predicted_exactly(self, model):
        prediction = model.predict_network(
            "BERT", parse_notation("B(2,2,1,on)"), ModelCategory.DENSE, CHEAP
        )
        assert prediction.cycles == float(prediction.dense_cycles)
        assert prediction.speedup == 1.0

    def test_prediction_matches_live_engine_within_budget(self, session, model):
        config = parse_notation("B(2,2,1,on)")
        exact = session.simulate("BERT", config, ModelCategory.B, CHEAP)
        predicted = model.predict_network(
            "BERT", config, ModelCategory.B, CHEAP
        )
        assert predicted.dense_cycles == exact.dense_cycles
        error = abs(predicted.cycles - exact.cycles) / exact.cycles
        assert error <= ERROR_BUDGET["quick"]


# ----------------------------------------------------------------------
# Deterministic calibration (live mini-corpus: space b x BERT x quick).
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def mini_corpus(session):
    return build_corpus(
        session, spaces=("b",), networks=("BERT",), regimes={"quick": CHEAP}
    )


class TestCalibrationDeterminism:
    def test_corpus_is_canonically_ordered(self, mini_corpus):
        keys = [row.sort_key for row in mini_corpus.rows]
        assert keys == sorted(keys)
        assert mini_corpus.workloads == {
            "BERT": parse_workload("BERT").fingerprint
        }

    def test_twice_fit_is_bitwise_identical(self, mini_corpus):
        first = fit_constants(mini_corpus)
        second = fit_constants(mini_corpus)
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)

    def test_shuffled_corpus_fits_identically(self, mini_corpus):
        # Cache-read order cannot leak into the constants: the fit
        # canonicalizes row order before any arithmetic.
        rows = list(mini_corpus.rows)
        random.Random(0).shuffle(rows)
        shuffled = Corpus(
            rows=tuple(rows),
            regimes=mini_corpus.regimes,
            spaces=mini_corpus.spaces,
            workloads=mini_corpus.workloads,
        )
        assert fit_constants(shuffled).to_dict() == \
            fit_constants(mini_corpus).to_dict()

    def test_corpus_identical_across_worker_counts(self, session, mini_corpus):
        parallel = Session(cache_dir=session.cache_dir, workers=2)
        rebuilt = build_corpus(
            parallel, spaces=("b",), networks=("BERT",),
            regimes={"quick": CHEAP},
        )
        assert rebuilt.rows == mini_corpus.rows
        assert fit_constants(rebuilt).to_dict() == \
            fit_constants(mini_corpus).to_dict()

    def test_fresh_fit_passes_its_own_check(self, mini_corpus):
        constants = fit_constants(mini_corpus)
        lines = check_constants(constants)
        assert lines and all(line.endswith("ok") for line in lines)

    def test_session_calibrate_round_trips_through_disk(
        self, session, mini_corpus, tmp_path
    ):
        path = tmp_path / "mini.json"
        constants = session.calibrate(
            spaces=("b",), networks=("BERT",), regimes={"quick": CHEAP},
            save=path,
        )
        assert constants.to_dict() == fit_constants(mini_corpus).to_dict()
        assert load_constants(path).to_dict() == constants.to_dict()


# ----------------------------------------------------------------------
# The surrogate-screened strategy (unit; fake predictor).
# ----------------------------------------------------------------------


class TestSurrogateStrategyUnit:
    def test_registered_with_the_strategy_registry(self):
        assert "surrogate" in STRATEGY_KINDS
        strategy = build_strategy("surrogate", paper_space("b"), budget=4)
        assert isinstance(strategy, SurrogateScreenedSearch)
        with pytest.raises(ValueError, match="budget"):
            build_strategy("surrogate", paper_space("b"))

    def test_unbound_strategy_refuses_to_ask(self):
        strategy = SurrogateScreenedSearch(paper_space("b"), budget=2)
        assert not strategy.bound
        with pytest.raises(ValueError, match="not bound to a predictor"):
            strategy.ask()

    def test_shortlist_ranks_by_predicted_scores(self):
        space = paper_space("b")
        target = "B(2,2,1,on)"
        strategy = SurrogateScreenedSearch(space, budget=3).bind(
            lambda c: (2.0, 2.0) if c.notation == target else (1.0, 1.0)
        )
        shortlist = strategy.ask()
        assert len(shortlist) == 3
        assert shortlist[0].notation == target
        assert strategy.screened == len(space)
        assert strategy.ask() == []  # single-shot

    def test_budget_validated(self):
        with pytest.raises(ValueError, match="budget"):
            SurrogateScreenedSearch(paper_space("b"), budget=0)


# ----------------------------------------------------------------------
# SearchSpec fidelity plumbing (pure).
# ----------------------------------------------------------------------


class TestFidelitySpec:
    def test_surrogate_kind_implies_multi(self):
        spec = SearchSpec.from_dict(
            {"space": "b", "strategy": {"kind": "surrogate", "budget": 4}}
        )
        assert spec.fidelity == "multi"
        assert spec.to_dict()["fidelity"] == "multi"

    def test_multi_alone_selects_the_surrogate_strategy(self):
        spec = SearchSpec.from_dict(
            {"space": "b", "fidelity": "multi", "strategy": {"budget": 4}}
        )
        assert spec.strategy.kind == "surrogate"

    def test_round_trip_preserves_fidelity(self):
        spec = SearchSpec.from_dict(
            {"space": "b", "fidelity": "multi", "strategy": {"budget": 4}}
        )
        again = SearchSpec.from_dict(spec.to_dict())
        assert again.fidelity == "multi"
        assert again.strategy.kind == "surrogate"

    def test_exact_spec_does_not_mention_fidelity(self):
        spec = SearchSpec.from_dict({"space": "b"})
        assert spec.fidelity == "exact"
        assert "fidelity" not in spec.to_dict()

    @pytest.mark.parametrize("payload", [
        {"space": "b", "fidelity": "exact",
         "strategy": {"kind": "surrogate", "budget": 4}},
        {"space": "b", "fidelity": "multi",
         "strategy": {"kind": "evolutionary", "budget": 4}},
    ])
    def test_conflicting_fidelity_and_kind_rejected(self, payload):
        with pytest.raises(ValueError, match="conflicts with strategy kind"):
            SearchSpec.from_dict(payload)

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            SearchSpec.from_dict({"space": "b", "fidelity": "turbo"})

    def test_surrogate_strategy_needs_a_budget(self):
        with pytest.raises(ValueError, match="budget"):
            SearchSpec.from_dict(
                {"space": "b", "strategy": {"kind": "surrogate"}}
            )


# ----------------------------------------------------------------------
# Multi-fidelity search end to end (real engine, shared cache).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["b", "a", "ab"])
class TestMultiFidelityEndToEnd:
    def test_recovers_star_with_a_tenth_of_the_grid(self, session, name):
        space = paper_space(name)
        settings = SPACE_SETTINGS[name]
        budget = BUDGETS[name]
        assert budget <= 0.10 * len(space)

        exhaustive = session.search(space, settings=settings)
        multi = session.search(
            space,
            SurrogateScreenedSearch(space, budget=budget),
            budget=budget, settings=settings,
        )
        assert multi.fidelity == "multi"
        assert multi.screened == len(space)
        assert multi.outcome.evaluated == budget
        assert len(multi.archive) == budget
        # The Table VI star survives the screening: the surrogate spent
        # <= 10% of the grid in exact evaluations and still found it.
        assert multi.optimal().label == exhaustive.optimal().label
        # Archive records are engine truth, not surrogate predictions.
        for record in multi.archive:
            assert record.evaluation == \
                exhaustive.archive.get(record.key).evaluation

    def test_bitwise_deterministic_across_workers(self, session, name):
        space = paper_space(name)
        settings = SPACE_SETTINGS[name]
        budget = BUDGETS[name]

        def run(workers):
            inner = Session(cache_dir=session.cache_dir, workers=workers)
            result = inner.search(
                space,
                SurrogateScreenedSearch(space, budget=budget),
                budget=budget, settings=settings,
            )
            return [(r.key, r.scores, r.evaluation) for r in result.archive]

        assert run(0) == run(2)


class TestMultiFidelityPlumbing:
    def test_checkpoint_resume_completes_the_shortlist(self, session, tmp_path):
        space = paper_space("b")
        settings = SPACE_SETTINGS["b"]
        budget = BUDGETS["b"]
        path = tmp_path / "multi.json"

        reference = session.search(
            space, SurrogateScreenedSearch(space, budget=budget),
            budget=budget, settings=settings,
        )
        # Interrupted run: the loop's budget stops the shortlist halfway.
        partial = session.search(
            space, SurrogateScreenedSearch(space, budget=budget),
            budget=budget // 2, settings=settings, checkpoint=path,
        )
        assert len(partial.archive) == budget // 2
        # Resume finishes the remaining shortlist entries and lands on the
        # same archive as the uninterrupted run, bitwise.
        resumed = session.search(
            space, SurrogateScreenedSearch(space, budget=budget),
            budget=budget, settings=settings, checkpoint=path, resume=True,
        )
        assert resumed.outcome.evaluated == budget - budget // 2
        assert [(r.key, r.scores, r.evaluation) for r in resumed.archive] == \
            [(r.key, r.scores, r.evaluation) for r in reference.archive]

    def test_spec_through_session(self, session):
        result = session.search(
            {
                "name": "multi-mini",
                "space": "b",
                "fidelity": "multi",
                "strategy": {"budget": 3},
                "networks": ["BERT"],
                "options": {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7},
            }
        )
        assert result.fidelity == "multi"
        assert result.screened == len(paper_space("b"))
        assert len(result.archive) == 3
        payload = result.to_dict()
        assert payload["fidelity"] == "multi"
        assert payload["screened"] == result.screened
        assert payload["evaluations"] == 3

    def test_uncalibrated_options_fail_loudly(self, session):
        space = paper_space("b")
        off_regime = EvalSettings(
            quick=True,
            options=SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=99),
            networks=("BERT",),
        )
        with pytest.raises(ValueError, match="not calibrated"):
            session.search(
                space, SurrogateScreenedSearch(space, budget=2),
                budget=2, settings=off_regime,
            )

    def test_explicit_constants_override_the_golden(self, session, tmp_path):
        # A stale constants file must not silently fall back to the golden.
        stale = load_constants().to_dict()
        stale["simulation_key_version"] = "0.0-stale"
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        space = paper_space("b")
        with pytest.raises(ValueError, match="stale constants"):
            session.search(
                space, SurrogateScreenedSearch(space, budget=2),
                budget=2, settings=SPACE_SETTINGS["b"], surrogate=path,
            )
