"""Tests for the Definition V.1 efficiency metrics."""

import pytest

from repro.config import PAPER_CORE
from repro.core.metrics import (
    EfficiencyPoint,
    dense_tops,
    effective_tops_per_mm2,
    effective_tops_per_watt,
    geometric_mean,
)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_below_arithmetic_mean(self):
        vals = [1.2, 3.0, 2.4, 5.0]
        assert geometric_mean(vals) < sum(vals) / len(vals)


class TestEffectiveEfficiency:
    def test_dense_tops(self):
        assert dense_tops() == pytest.approx(1.6384)

    def test_baseline_tops_per_watt(self):
        # Dense baseline: 1.6384 TOPS at 151 mW -> ~10.85 TOPS/W.
        assert effective_tops_per_watt(1.0, 151.0) == pytest.approx(10.85, rel=0.01)

    def test_speedup_scales_linearly(self):
        one = effective_tops_per_watt(1.0, 200.0)
        four = effective_tops_per_watt(4.0, 200.0)
        assert four == pytest.approx(4 * one)

    def test_area_efficiency(self):
        # Baseline: 1.6384 TOPS on 217.5 k um^2 -> ~7.5 TOPS/mm^2.
        assert effective_tops_per_mm2(1.0, 217_500.0) == pytest.approx(7.53, rel=0.01)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            effective_tops_per_watt(1.0, 0.0)
        with pytest.raises(ValueError):
            effective_tops_per_mm2(1.0, -5.0)


class TestEfficiencyPoint:
    def test_relative_to(self):
        griffin = EfficiencyPoint("Griffin", "DNN.B", speedup=3.5, power_mw=284.0,
                                  area_um2=286_000.0)
        sparten = EfficiencyPoint("SparTen", "DNN.B", speedup=3.9, power_mw=991.0,
                                  area_um2=1_139_000.0)
        power_ratio, area_ratio = griffin.relative_to(sparten)
        # The Fig. 8(b) headline: ~3x more power-efficient.
        assert power_ratio == pytest.approx(3.13, rel=0.02)
        assert area_ratio > 3.0

    def test_uses_geometry(self):
        pt = EfficiencyPoint("x", "DNN.dense", 1.0, 100.0, 1e6, geometry=PAPER_CORE)
        assert pt.tops_per_watt == pytest.approx(16.384)
