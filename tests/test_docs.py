"""The documentation suite must stay executable and internally linked.

Runs ``tools/check_docs.py`` -- the same gate the CI docs job uses -- so
a code change that breaks a ``docs/`` example or a moved file that breaks
a link fails tier-1 locally, not just in CI.  The doc examples are
written against quick sampling (BERT-only suites, one pass per GEMM) and
their own temp cache dirs, so this stays cheap and hermetic.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"
DOCS = REPO_ROOT / "docs"


def test_docs_suite_exists():
    for name in ("architecture.md", "benchmarks.md", "caching.md",
                 "figures.md", "search.md", "workloads.md"):
        assert (DOCS / name).is_file(), f"docs/{name} is missing"


def test_docs_code_blocks_execute_and_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(CHECKER)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"docs check failed\n--- stdout ---\n{proc.stdout}"
        f"\n--- stderr ---\n{proc.stderr}"
    )
    assert "all documentation checks passed" in proc.stdout
