"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--arch", "B(4,0,1,on)", "--network", "AlexNet",
             "--category", "DNN.B"]
        )
        assert args.network == "AlexNet"
        assert args.category.value == "DNN.B"

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--arch", "Dense", "--network", "VGG"]
            )

    def test_rejects_unknown_category(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--arch", "Dense", "--network", "BERT",
                 "--category", "DNN.X"]
            )


class TestCommands:
    def test_cost_command(self, capsys):
        assert main(["cost", "--arch", "B(4,0,1,on)"]) == 0
        out = capsys.readouterr().out
        assert "B(4,0,1,on)" in out and "mW" in out and "SRAM" in out

    def test_cost_griffin(self, capsys):
        assert main(["cost", "--arch", "Griffin"]) == 0
        assert "Griffin" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--arch", "B(4,0,0,on)", "--network", "AlexNet",
             "--category", "DNN.B", "--passes", "2", "--max-t", "32", "--layers"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "conv1" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--category", "DNN.B", "--arch", "Dense",
             "--arch", "B(2,0,0,on)", "--passes", "2", "--max-t", "32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TOPS/W" in out and "Baseline" in out
