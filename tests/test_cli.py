"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--arch", "B(4,0,1,on)", "--network", "AlexNet",
             "--category", "DNN.B"]
        )
        assert args.network == "AlexNet"
        assert args.category.value == "DNN.B"

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--arch", "Dense", "--network", "VGG"]
            )

    def test_rejects_unknown_category(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--arch", "Dense", "--network", "BERT",
                 "--category", "DNN.X"]
            )


class TestCommands:
    def test_cost_command(self, capsys):
        assert main(["cost", "--arch", "B(4,0,1,on)"]) == 0
        out = capsys.readouterr().out
        assert "B(4,0,1,on)" in out and "mW" in out and "SRAM" in out

    def test_cost_griffin(self, capsys):
        assert main(["cost", "--arch", "Griffin"]) == 0
        assert "Griffin" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--arch", "B(4,0,0,on)", "--network", "AlexNet",
             "--category", "DNN.B", "--passes", "2", "--max-t", "32", "--layers"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "conv1" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--category", "DNN.B", "--arch", "Dense",
             "--arch", "B(2,0,0,on)", "--passes", "2", "--max-t", "32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TOPS/W" in out and "Baseline" in out


class TestSweepCommand:
    def test_rejects_unknown_space(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--space", "c"])

    def test_quick_sweep_cold_then_warm(self, capsys, tmp_path, monkeypatch):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        argv = [
            "sweep", "--space", "b", "--quick", "--limit", "4",
            "--network", "BERT", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Fig. 5 Sparse.B sweep: 4 design points" in cold
        assert "optimal point" in cold
        assert "persistent cache: 0 hits" in cold

        engine.clear_memo_cache()
        assert main(argv + ["--json", str(tmp_path / "fig5.json")]) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm and "100.0% hit rate" in warm
        # Identical efficiency numbers on the warm, cache-served path.
        assert warm.split("optimal point")[0] == cold.split("optimal point")[0]

        import json

        payload = json.loads((tmp_path / "fig5.json").read_text())
        assert payload["space"] == "b" and len(payload["rows"]) == 4
        assert payload["cache"]["hits"] > 0

    def test_no_cache_flag(self, capsys, tmp_path, monkeypatch):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        code = main(
            ["sweep", "--space", "b", "--quick", "--limit", "2",
             "--network", "BERT", "--no-cache"]
        )
        assert code == 0
        assert "persistent cache: disabled" in capsys.readouterr().out
