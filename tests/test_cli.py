"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

MINI_SPEC = {
    "name": "mini",
    "designs": ["Dense", "B(2,0,0)"],
    "categories": ["DNN.B"],
    "networks": ["BERT"],
    "options": {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7},
}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--arch", "B(4,0,1,on)", "--network", "AlexNet",
             "--category", "DNN.B"]
        )
        assert args.network == "AlexNet"
        assert args.category.value == "DNN.B"

    def test_rejects_unknown_network(self, capsys):
        # Workload tokens are free-form (names, overrides, spec paths), so
        # rejection happens at resolve time -- with a closest-match hint.
        assert main(["simulate", "--arch", "Dense", "--network", "ResNet5"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'ResNet5'" in err
        assert "did you mean ResNet50" in err

    def test_rejects_unknown_category(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--arch", "Dense", "--network", "BERT",
                 "--category", "DNN.X"]
            )

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--compute-threads", "3"]
        )
        assert args.port == 0
        assert args.workers == 2
        assert args.compute_threads == 3
        assert args.host == "127.0.0.1"


class TestErrorReporting:
    def test_human_errors_keep_stable_prefix(self, capsys):
        assert main(["cost", "--arch", "NoSuchDesign"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "unrecognized design" in err

    def test_json_errors_emit_the_envelope(self, capsys):
        assert main(["--json-errors", "cost", "--arch", "NoSuchDesign"]) == 2
        envelope = json.loads(capsys.readouterr().err)
        assert envelope["error"]["v"] == 1
        assert envelope["error"]["kind"] == "invalid-request"
        assert "unrecognized design" in envelope["error"]["message"]


#: One bad input per CLI verb: (argv, expected envelope kind, message
#: fragment).  Every verb must fail through the shared ``repro.errors``
#: envelope -- exit code 2, machine-readable kind, actionable message --
#: so automation wrapping any subcommand can rely on one error shape.
VERB_BAD_INPUTS = [
    ("cost", ["cost", "--arch", "NoSuchDesign"],
     "invalid-request", "unrecognized design"),
    ("simulate", ["simulate", "--arch", "Dense", "--network", "ResNet5"],
     "invalid-request", "unknown workload"),
    ("compare", ["compare", "--category", "DNN.B", "--arch", "NoSuchDesign"],
     "invalid-request", "unrecognized design"),
    ("run", ["run", "/no/such/spec.json"],
     "io-error", "No such file"),
    ("sweep", ["sweep", "--space", "b", "--quick", "--limit", "1",
               "--network", "NoSuchNet99"],
     "invalid-request", "unknown workload"),
    ("search", ["search", "/no/such/spec.json"],
     "io-error", "No such file"),
    ("workloads", ["workloads", "fingerprint", "NoSuchNet99"],
     "invalid-request", "unknown workload"),
    ("surrogate-fit", ["surrogate", "fit", "--network", "NoSuchNet99"],
     "invalid-request", "no calibration workloads"),
    ("surrogate-check",
     ["surrogate", "check", "--constants", "/no/such/constants.json"],
     "invalid-request", "repro surrogate fit"),
    # 203.0.113.0/24 is TEST-NET-3: never assigned, so the bind fails
    # immediately and the server never starts serving.
    ("serve", ["serve", "--host", "203.0.113.7", "--port", "0"],
     "io-error", "bind"),
    ("lint", ["lint", "--rule", "NOPE999"],
     "invalid-request", "unknown lint rule"),
]


class TestJsonErrorsAcrossVerbs:
    @pytest.mark.parametrize(
        "verb,argv,kind,fragment",
        VERB_BAD_INPUTS,
        ids=[case[0] for case in VERB_BAD_INPUTS],
    )
    def test_every_verb_fails_through_the_envelope(
        self, capsys, verb, argv, kind, fragment
    ):
        assert main(["--json-errors", *argv]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # the envelope is the only output
        envelope = json.loads(captured.err)
        assert envelope["error"]["v"] == 1
        assert envelope["error"]["kind"] == kind
        assert fragment in envelope["error"]["message"]

    @pytest.mark.parametrize(
        "verb,argv,kind,fragment",
        VERB_BAD_INPUTS,
        ids=[case[0] for case in VERB_BAD_INPUTS],
    )
    def test_human_mode_keeps_the_stable_prefix(
        self, capsys, verb, argv, kind, fragment
    ):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert fragment in err


class TestCommands:
    def test_cost_command(self, capsys):
        assert main(["cost", "--arch", "B(4,0,1,on)"]) == 0
        out = capsys.readouterr().out
        assert "B(4,0,1,on)" in out and "mW" in out and "SRAM" in out

    def test_cost_griffin(self, capsys):
        assert main(["cost", "--arch", "Griffin"]) == 0
        assert "Griffin" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--arch", "B(4,0,0,on)", "--network", "AlexNet",
             "--category", "DNN.B", "--passes", "2", "--max-t", "32", "--layers"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "conv1" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--category", "DNN.B", "--arch", "Dense",
             "--arch", "B(2,0,0,on)", "--passes", "2", "--max-t", "32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TOPS/W" in out and "Baseline" in out


class TestUnifiedDesignParsing:
    """Every verb accepts Griffin, starred points, and baseline names."""

    def test_cost_baseline_name(self, capsys):
        assert main(["cost", "--arch", "sparten"]) == 0
        assert "SparTen" in capsys.readouterr().out

    def test_cost_starred_point(self, capsys):
        assert main(["cost", "--arch", "Sparse.B*"]) == 0
        assert "Sparse.B*" in capsys.readouterr().out

    def test_simulate_griffin_morphs(self, capsys, tmp_path, monkeypatch):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        argv = [
            "simulate", "--arch", "griffin", "--network", "BERT",
            "--category", "DNN.B", "--passes", "1", "--max-t", "16",
            "--cache-dir", str(tmp_path), "--cache-stats",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Griffin [B(8,0,1,on)]" in cold
        assert "persistent cache: 0 hits" in cold

        # The repeated CLI call is served from the persistent cache.
        engine.clear_memo_cache()
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm and "100.0% hit rate" in warm
        assert warm.split("persistent cache")[0] == cold.split("persistent cache")[0]

    def test_compare_accepts_baseline_names(self, capsys, tmp_path, monkeypatch):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        code = main(
            ["compare", "--category", "DNN.B", "--arch", "Dense",
             "--arch", "SparTen", "--arch", "Griffin",
             "--passes", "1", "--max-t", "16",
             "--cache-dir", str(tmp_path), "--cache-stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SparTen" in out and "Griffin" in out
        assert "persistent cache:" in out

    def test_unknown_design_is_an_error(self, capsys):
        assert main(["cost", "--arch", "NoSuchDesign"]) == 2
        assert "unrecognized design" in capsys.readouterr().err


class TestRunCommand:
    def test_run_experiment_cold_then_warm(self, capsys, tmp_path, monkeypatch):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        spec_path = tmp_path / "mini.json"
        spec_path.write_text(json.dumps(MINI_SPEC))
        argv = ["run", str(spec_path), "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "mini" in cold and "Baseline" in cold and "B(2,0,0,off)" in cold
        assert "persistent cache: 0 hits" in cold

        engine.clear_memo_cache()
        assert main(argv + ["--json", str(tmp_path / "out.json")]) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm and "100.0% hit rate" in warm
        assert warm.split("persistent cache")[0] == cold.split("persistent cache")[0]

        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["experiment"] == "mini"
        assert len(payload["rows"]) == 2
        assert payload["cache"]["hits"] > 0

    def test_run_missing_file(self, capsys):
        assert main(["run", "/no/such/spec.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_invalid_spec(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"designs": ["NoSuchDesign"]}))
        assert main(["run", str(bad)]) == 2
        assert "unrecognized design" in capsys.readouterr().err


class TestSweepCommand:
    def test_rejects_unknown_space(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--space", "c"])

    def test_quick_sweep_cold_then_warm(self, capsys, tmp_path, monkeypatch):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        argv = [
            "sweep", "--space", "b", "--quick", "--limit", "4",
            "--network", "BERT", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Fig. 5 Sparse.B sweep: 4 design points" in cold
        assert "optimal point" in cold
        assert "persistent cache: 0 hits" in cold

        engine.clear_memo_cache()
        assert main(argv + ["--json", str(tmp_path / "fig5.json")]) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm and "100.0% hit rate" in warm
        # Identical efficiency numbers on the warm, cache-served path.
        assert warm.split("optimal point")[0] == cold.split("optimal point")[0]

        import json

        payload = json.loads((tmp_path / "fig5.json").read_text())
        assert payload["space"] == "b" and len(payload["rows"]) == 4
        assert payload["cache"]["hits"] > 0

    def test_no_cache_flag(self, capsys, tmp_path, monkeypatch):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        code = main(
            ["sweep", "--space", "b", "--quick", "--limit", "2",
             "--network", "BERT", "--no-cache"]
        )
        assert code == 0
        assert "persistent cache: disabled" in capsys.readouterr().out


SEARCH_SPEC = {
    "name": "cli-mini",
    "space": {"name": "b-mini", "db1": [2, 3], "db3": [0, 1],
              "max_amux_fanin": 8},
    "strategy": {"kind": "evolutionary", "seed": 3, "budget": 5,
                 "population": 3, "parents": 2, "children": 2},
    "networks": ["BERT"],
    "options": {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7},
}


class TestSearchCommand:
    def test_needs_spec_or_space(self, capsys):
        assert main(["search"]) == 2
        assert "--space" in capsys.readouterr().err

    def test_flag_strategy_needs_budget(self, capsys):
        assert main(["search", "--space", "b"]) == 2
        assert "budget" in capsys.readouterr().err

    def test_spec_search_with_checkpoint_resume_and_json(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        spec_path = tmp_path / "search.json"
        spec_path.write_text(json.dumps(SEARCH_SPEC))
        checkpoint = tmp_path / "front.json"
        argv = [
            "search", str(spec_path), "--cache-dir", str(tmp_path / "cache"),
            "--checkpoint", str(checkpoint),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "optimal point" in cold
        assert "evaluated 5 of 8 feasible configs" in cold
        assert checkpoint.is_file()

        # Resume: everything replayed from the checkpoint, same optimum.
        engine.clear_memo_cache()
        assert main(argv + ["--resume", "--json", str(tmp_path / "out.json")]) == 0
        resumed = capsys.readouterr().out
        assert "in 0 batches" in resumed
        assert resumed.split("optimal point")[1].splitlines()[0] == \
            cold.split("optimal point")[1].splitlines()[0]

        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["search"] == "cli-mini"
        assert payload["evaluations"] == 5 and payload["grid_size"] == 8
        assert payload["optimal"]["label"] == \
            cold.split("optimal point")[1].splitlines()[0].split(": ")[1]

    def test_strategy_override_keeps_spec_tuning(self, capsys, tmp_path,
                                                 monkeypatch):
        """--strategy random must inherit the spec's budget/seed, not
        reset them to flag defaults."""
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        spec_path = tmp_path / "search.json"
        spec_path.write_text(json.dumps(SEARCH_SPEC))
        code = main(
            ["search", str(spec_path), "--strategy", "random",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "random sample (seed 3)" in out        # spec's seed survives
        assert "evaluated 5 of 8 feasible configs" in out  # spec's budget too

    def test_resume_without_checkpoint_is_an_error(self, capsys, tmp_path):
        spec_path = tmp_path / "search.json"
        spec_path.write_text(json.dumps(SEARCH_SPEC))
        assert main(["search", str(spec_path), "--resume",
                     "--cache-dir", str(tmp_path / "cache")]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_fidelity_multi_conflicts_with_exact_strategy_flag(self, capsys):
        assert main(["search", "--space", "b", "--fidelity", "multi",
                     "--strategy", "evolutionary", "--budget", "4"]) == 2
        assert "conflicts with --strategy" in capsys.readouterr().err

    def test_fidelity_exact_rejects_a_surrogate_spec(self, capsys, tmp_path):
        spec_path = tmp_path / "multi.json"
        spec_path.write_text(json.dumps(
            {"space": "b", "fidelity": "multi", "strategy": {"budget": 4}}
        ))
        assert main(["search", str(spec_path), "--fidelity", "exact"]) == 2
        assert "add --strategy" in capsys.readouterr().err

    def test_exhaustive_override_matches_sweep_selection(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        spec_path = tmp_path / "search.json"
        spec_path.write_text(json.dumps(SEARCH_SPEC))
        code = main(
            ["search", str(spec_path), "--strategy", "exhaustive",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "evaluated 8 of 8 feasible configs (100.0%)" in out
        assert "optimal point" in out


class TestSurrogateCommand:
    def test_fit_check_and_multifidelity_search(
        self, capsys, tmp_path, monkeypatch
    ):
        """The full CLI loop: fit constants from this cache, verify the
        error budget offline, then spend them in a multi-fidelity search."""
        from repro.sim import engine

        monkeypatch.setattr(engine, "_persistent_cache", None)
        engine.clear_memo_cache()
        cache = str(tmp_path / "cache")
        constants = tmp_path / "constants.json"
        assert main(
            ["surrogate", "fit", "--space", "b", "--network", "BERT",
             "--regime", "quick", "--out", str(constants),
             "--cache-dir", cache]
        ) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "BERT" in out
        assert f"wrote fitted surrogate constants to {constants}" in out
        assert constants.is_file()

        # Offline budget verification: no cache flags, no simulation.
        assert main(["surrogate", "check", "--constants", str(constants)]) == 0
        out = capsys.readouterr().out
        assert "surrogate error budget: OK" in out
        assert " ok" in out

        engine.clear_memo_cache()
        spec_path = tmp_path / "multi.json"
        spec_path.write_text(json.dumps({
            "name": "cli-multi",
            "space": "b",
            "fidelity": "multi",
            "strategy": {"budget": 4},
            "networks": ["BERT"],
            "options": {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7},
        }))
        assert main(
            ["search", str(spec_path), "--surrogate", str(constants),
             "--cache-dir", cache]
        ) == 0
        out = capsys.readouterr().out
        assert "evaluated 4 of 42 feasible configs" in out
        assert ("surrogate screened 42 configs; 4 exact evaluations "
                "confirmed the shortlist") in out
        assert "optimal point" in out


class TestObservability:
    """``--trace`` / ``--metrics`` flags and the ``trace`` verb."""

    def run_spec(self, tmp_path) -> str:
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(MINI_SPEC))
        return str(path)

    def test_trace_flag_writes_jsonl_and_keeps_stdout_identical(
        self, tmp_path, capsys
    ):
        spec = self.run_spec(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["run", spec, "--cache-dir", cache]) == 0  # cold warm-up
        capsys.readouterr()
        assert main(["run", spec, "--cache-dir", cache]) == 0
        plain = capsys.readouterr().out
        trace_path = tmp_path / "run.trace.jsonl"
        assert main(
            ["run", spec, "--cache-dir", cache, "--trace", str(trace_path)]
        ) == 0
        captured = capsys.readouterr()
        # Tracing must not perturb what the command prints.
        assert captured.out == plain
        assert "wrote trace" in captured.err
        lines = trace_path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["trace"] == "repro-trace-v1"
        assert header["command"] == "run"
        assert header["spans"] == len(lines) - 1 > 0
        names = {json.loads(line)["name"] for line in lines[1:]}
        assert "session.run" in names
        assert "cache.network.get" in names

    def test_trace_summarize_and_chrome_export_round_trip(
        self, tmp_path, capsys
    ):
        spec = self.run_spec(tmp_path)
        cache = str(tmp_path / "cache")
        trace_path = tmp_path / "t.jsonl"
        assert main(
            ["run", spec, "--cache-dir", cache, "--trace", str(trace_path)]
        ) == 0
        assert main(["run", spec, "--cache-dir", cache,
                     "--trace", str(trace_path)]) == 0  # warm rewrite
        capsys.readouterr()

        assert main(["trace", "summarize", str(trace_path)]) == 0
        summary = capsys.readouterr().out
        assert "trace summary" in summary
        # Warm run: whole networks from the network tier, no layer lookups.
        assert "cache spans: network 2h/0m, layer 0h/0m" in summary
        assert "critical path:" in summary

        out_path = tmp_path / "t.chrome.json"
        assert main(["trace", "export", str(trace_path), "--chrome",
                     "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        # The Chrome document feeds back through summarize unchanged.
        assert main(["trace", "summarize", str(out_path)]) == 0
        assert "cache spans: network 2h/0m, layer 0h/0m" in capsys.readouterr().out

    def test_trace_export_requires_a_format(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        trace_path.write_text('{"trace": "repro-trace-v1", "v": 1}\n')
        assert main(["trace", "export", str(trace_path)]) == 2
        assert "--chrome" in capsys.readouterr().err

    def test_metrics_flag_dumps_prometheus_text(self, tmp_path, capsys):
        spec = self.run_spec(tmp_path)
        assert main(
            ["run", spec, "--cache-dir", str(tmp_path / "cache"), "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_cache_events_total counter" in out
        assert 'repro_cache_events_total{tier="network",event="puts"} 2' in out
        assert 'repro_cli_run{fact="design_points"} 2' in out

    def test_traced_failure_envelope_carries_the_trace_id(
        self, tmp_path, capsys
    ):
        trace_path = tmp_path / "fail.jsonl"
        assert main(
            ["--json-errors", "run", str(tmp_path / "missing.json"),
             "--trace", str(trace_path)]
        ) == 2
        captured = capsys.readouterr()
        envelope = json.loads(captured.err.split("wrote trace")[0])
        header = json.loads(trace_path.read_text().splitlines()[0])
        assert envelope["error"]["trace_id"] == header["trace_id"]
