"""Tests for the rotation-based load-balancing shuffle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.shuffle import rotation_shuffle


class TestRotationShuffle:
    def test_time_step_zero_is_identity(self):
        rng = np.random.default_rng(0)
        mask = rng.random((5, 8, 3)) < 0.5
        out = rotation_shuffle(mask)
        np.testing.assert_array_equal(out[0], mask[0])

    def test_rotates_by_one_lane_per_step(self):
        mask = np.zeros((3, 4, 1), dtype=bool)
        mask[:, 0, 0] = True  # hot lane 0
        out = rotation_shuffle(mask)
        # Slot l at time t receives source lane (l + t) % L, so the hot
        # lane's element appears at slot (0 - t) % L.
        assert out[0, 0, 0]
        assert out[1, 3, 0]
        assert out[2, 2, 0]

    def test_is_permutation_per_time_step(self):
        rng = np.random.default_rng(1)
        mask = rng.random((7, 16, 4)) < 0.3
        out = rotation_shuffle(mask)
        np.testing.assert_array_equal(out.sum(axis=1), mask.sum(axis=1))

    def test_preserves_total_ops(self):
        rng = np.random.default_rng(2)
        mask = rng.random((9, 16, 2, 3)) < 0.4
        assert rotation_shuffle(mask).sum() == mask.sum()

    def test_spreads_persistent_hot_lane(self):
        mask = np.zeros((16, 16, 1), dtype=bool)
        mask[:, 5, :] = True
        out = rotation_shuffle(mask)
        per_slot = out.sum(axis=0)[:, 0]
        # The 16 hot elements are distributed one per slot.
        np.testing.assert_array_equal(per_slot, np.ones(16, dtype=np.int64))

    def test_pairing_preserved_between_a_and_b(self):
        # Applying the same rotation to both operands keeps (t, k) pairs.
        rng = np.random.default_rng(3)
        a = rng.random((6, 8, 4)) < 0.5
        b = rng.random((6, 8, 5)) < 0.5
        both = a[:, :, :, None] & b[:, :, None, :]
        lhs = rotation_shuffle(a)[:, :, :, None] & rotation_shuffle(b)[:, :, None, :]
        rhs = rotation_shuffle(both)
        np.testing.assert_array_equal(lhs, rhs)

    def test_does_not_modify_input(self):
        mask = np.eye(4, dtype=bool)[None].repeat(3, axis=0)
        copy = mask.copy()
        rotation_shuffle(mask)
        np.testing.assert_array_equal(mask, copy)


@settings(max_examples=30, deadline=None)
@given(
    t=st.integers(1, 12),
    lanes=st.integers(1, 16),
    c=st.integers(1, 4),
    seed=st.integers(0, 2**31),
)
def test_shuffle_is_bijective(t, lanes, c, seed):
    rng = np.random.default_rng(seed)
    mask = (rng.random((t, lanes, c)) * 1000).astype(np.int64)  # unique-ish values
    out = rotation_shuffle(mask)
    for step in range(t):
        assert sorted(out[step].ravel()) == sorted(mask[step].ravel())
