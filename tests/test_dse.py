"""Tests for the design-space exploration machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ModelCategory, sparse_b
from repro.core.metrics import EfficiencyPoint
from repro.core.overhead import overhead_of
from repro.dse.evaluate import DesignEvaluation, EvalSettings
from repro.dse.explorer import sparse_a_space, sparse_ab_space, sparse_b_space
from repro.dse.pareto import pareto_front
from repro.dse.report import format_table, select_optimal


class TestExplorer:
    def test_sparse_b_space_respects_fanin(self):
        for cfg in sparse_b_space():
            assert overhead_of(cfg).amux_fanin <= 8
            assert cfg.b.d1 > 1

    def test_sparse_a_space_respects_fanin(self):
        for cfg in sparse_a_space():
            ovh = overhead_of(cfg)
            assert max(ovh.amux_fanin, ovh.bmux_fanin) <= 8

    def test_sparse_ab_space_constraints(self):
        space = sparse_ab_space()
        for cfg in space:
            assert overhead_of(cfg).amux_fanin <= 16
            assert cfg.a.d3 == 0  # excluded per Fig. 7 observation 3
            assert cfg.a.d1 <= 2

    def test_spaces_include_published_stars(self):
        b_notations = {c.notation for c in sparse_b_space()}
        assert "B(4,0,1,on)" in b_notations
        a_notations = {c.notation for c in sparse_a_space()}
        assert "A(2,1,0,on)" in a_notations
        ab_notations = {c.notation for c in sparse_ab_space()}
        assert "AB(2,0,0,2,0,1,on)" in ab_notations

    def test_shuffle_variants_paired(self):
        space = sparse_b_space(shuffle_options=(False, True))
        on = sum(1 for c in space if c.shuffle)
        assert on == len(space) - on


class TestPareto:
    def test_simple_front(self):
        pts = [(1, 5), (2, 4), (3, 3), (2, 2), (0, 6)]
        front = pareto_front(pts, [lambda p: p[0], lambda p: p[1]])
        assert set(front) == {(1, 5), (2, 4), (3, 3), (0, 6)}

    def test_single_objective_is_max(self):
        front = pareto_front([3, 1, 4, 1, 5], [lambda x: x])
        assert front == [5]

    def test_empty(self):
        assert pareto_front([], [lambda x: x]) == []


@settings(max_examples=30, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10)), min_size=1, max_size=30
    )
)
def test_pareto_properties(pts):
    """No front member dominates another; all others are dominated."""
    objs = [lambda p: p[0], lambda p: p[1]]
    front = pareto_front(pts, objs)
    assert front
    for p in front:
        for q in front:
            if p != q:
                assert not (q[0] >= p[0] and q[1] >= p[1] and (q[0] > p[0] or q[1] > p[1]))
    for p in pts:
        assert any(q[0] >= p[0] and q[1] >= p[1] for q in front)


def _eval(label, sparse_eff, dense_eff):
    # Build a DesignEvaluation with synthetic efficiencies via power choice.
    def pt(category, eff):
        return EfficiencyPoint(
            label=label, category=category, speedup=1.0,
            power_mw=1.6384e3 / eff, area_um2=1e6,
        )
    return DesignEvaluation(
        label=label,
        points=(pt(ModelCategory.B.value, sparse_eff), pt(ModelCategory.DENSE.value, dense_eff)),
    )


class TestSelectOptimal:
    def test_picks_balanced_product(self):
        evals = [
            _eval("fast-but-hot", 30.0, 4.0),
            _eval("balanced", 25.0, 8.0),
            _eval("cold-but-slow", 12.0, 10.0),
        ]
        best = select_optimal(evals, ModelCategory.B)
        assert best.label == "balanced"

    def test_dominated_points_never_win(self):
        evals = [_eval("good", 20.0, 8.0), _eval("strictly-worse", 18.0, 7.0)]
        assert select_optimal(evals, ModelCategory.B).label == "good"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            select_optimal([], ModelCategory.B)


class TestReportTable:
    def test_format_alignment(self):
        rows = [{"arch": "B(4,0,1,on)", "speedup": 2.5}, {"arch": "x", "speedup": 10.0}]
        text = format_table(rows, title="Fig5")
        lines = text.splitlines()
        assert lines[0] == "Fig5"
        assert "B(4,0,1,on)" in lines[3]
        assert "2.5" in text and "10" in text

    def test_empty_rows(self):
        assert format_table([], title="t") == "t"


class TestEvalSettings:
    def test_quick_suite_is_subset(self):
        quick = EvalSettings(quick=True)
        full = EvalSettings(quick=False)
        q = {b.name for b in quick.suite(ModelCategory.B)}
        f = {b.name for b in full.suite(ModelCategory.B)}
        assert q <= f and len(q) == 3

    def test_a_suite_excludes_bert(self):
        names = {b.name for b in EvalSettings(quick=False).suite(ModelCategory.A)}
        assert "BERT" not in names
