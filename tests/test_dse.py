"""Tests for the design-space exploration machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ModelCategory, sparse_b
from repro.core.metrics import EfficiencyPoint
from repro.core.overhead import overhead_of
from repro.dse.evaluate import DesignEvaluation, EvalSettings
from repro.dse.explorer import design_space, space_categories, sparse_a_space, sparse_ab_space, sparse_b_space
from repro.dse.pareto import dominates, pareto_front, pareto_ranks
from repro.dse.report import format_table, select_optimal


class TestExplorer:
    def test_sparse_b_space_respects_fanin(self):
        for cfg in sparse_b_space():
            assert overhead_of(cfg).amux_fanin <= 8
            assert cfg.b.d1 > 1

    def test_sparse_a_space_respects_fanin(self):
        for cfg in sparse_a_space():
            ovh = overhead_of(cfg)
            assert max(ovh.amux_fanin, ovh.bmux_fanin) <= 8

    def test_sparse_ab_space_constraints(self):
        space = sparse_ab_space()
        for cfg in space:
            assert overhead_of(cfg).amux_fanin <= 16
            assert cfg.a.d3 == 0  # excluded per Fig. 7 observation 3
            assert cfg.a.d1 <= 2

    def test_spaces_include_published_stars(self):
        b_notations = {c.notation for c in sparse_b_space()}
        assert "B(4,0,1,on)" in b_notations
        a_notations = {c.notation for c in sparse_a_space()}
        assert "A(2,1,0,on)" in a_notations
        ab_notations = {c.notation for c in sparse_ab_space()}
        assert "AB(2,0,0,2,0,1,on)" in ab_notations

    def test_shuffle_variants_paired(self):
        space = sparse_b_space(shuffle_options=(False, True))
        on = sum(1 for c in space if c.shuffle)
        assert on == len(space) - on


class TestPareto:
    XY = [lambda p: p[0], lambda p: p[1]]

    def test_simple_front(self):
        pts = [(1, 5), (2, 4), (3, 3), (2, 2), (0, 6)]
        front = pareto_front(pts, self.XY)
        assert set(front) == {(1, 5), (2, 4), (3, 3), (0, 6)}

    def test_single_objective_is_max(self):
        front = pareto_front([3, 1, 4, 1, 5], [lambda x: x])
        assert front == [5]

    def test_empty(self):
        assert pareto_front([], [lambda x: x]) == []

    def test_duplicate_front_points_all_kept_by_default(self):
        # Identical score vectors never dominate each other, so every copy
        # of a duplicated front point survives, in input order.
        pts = [(2, 2), (1, 1), (2, 2), (2, 2)]
        assert pareto_front(pts, self.XY) == [(2, 2), (2, 2), (2, 2)]

    def test_dedupe_keeps_first_of_each_tied_score(self):
        labelled = [("a", 2, 2), ("b", 1, 1), ("c", 2, 2), ("d", 0, 3)]
        objs = [lambda p: p[1], lambda p: p[2]]
        front = pareto_front(labelled, objs, dedupe=True)
        assert front == [("a", 2, 2), ("d", 0, 3)]

    def test_all_identical_items(self):
        pts = [(1, 1)] * 4
        assert pareto_front(pts, self.XY) == pts
        assert pareto_front(pts, self.XY, dedupe=True) == [(1, 1)]

    def test_partial_tie_one_equal_coordinate(self):
        # (3, 5) dominates (3, 4): equal on x, strictly better on y.
        assert pareto_front([(3, 5), (3, 4)], self.XY) == [(3, 5)]

    def test_single_item_and_no_objectives(self):
        assert pareto_front([(1, 2)], self.XY) == [(1, 2)]
        # With no objectives nothing can dominate: everything is a tie.
        assert pareto_front([1, 2, 3], []) == [1, 2, 3]
        assert pareto_front([1, 2, 3], [], dedupe=True) == [1]


class TestDominates:
    def test_strict_and_tie_and_incomparable(self):
        assert dominates((2, 2), (1, 2))
        assert not dominates((1, 2), (2, 2))
        assert not dominates((2, 2), (2, 2))      # ties dominate nothing
        assert not dominates((3, 1), (1, 3))      # incomparable
        assert not dominates((), ())              # empty vectors

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            dominates((1, 2), (1, 2, 3))


class TestParetoRanks:
    def test_layered_ranks(self):
        scores = [(3, 3), (2, 2), (1, 1), (0, 4)]
        assert pareto_ranks(scores) == [0, 1, 2, 0]

    def test_ties_share_a_rank(self):
        assert pareto_ranks([(2, 2), (2, 2), (1, 1)]) == [0, 0, 1]

    def test_empty(self):
        assert pareto_ranks([]) == []

    def test_every_rank_contiguous_from_zero(self):
        scores = [(i % 4, (7 - i) % 5) for i in range(20)]
        ranks = pareto_ranks(scores)
        assert set(ranks) == set(range(max(ranks) + 1))


class TestDesignSpaceLookup:
    def test_unknown_space_lists_names_and_labels(self):
        with pytest.raises(ValueError) as err:
            design_space("c")
        message = str(err.value)
        for name in ("'a'", "'b'", "'ab'"):
            assert name in message
        assert "Fig. 5 Sparse.B" in message
        with pytest.raises(ValueError, match="Fig. 6 Sparse.A"):
            space_categories("nope")


@settings(max_examples=30, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10)), min_size=1, max_size=30
    )
)
def test_pareto_properties(pts):
    """No front member dominates another; all others are dominated."""
    objs = [lambda p: p[0], lambda p: p[1]]
    front = pareto_front(pts, objs)
    assert front
    for p in front:
        for q in front:
            if p != q:
                assert not (q[0] >= p[0] and q[1] >= p[1] and (q[0] > p[0] or q[1] > p[1]))
    for p in pts:
        assert any(q[0] >= p[0] and q[1] >= p[1] for q in front)


def _eval(label, sparse_eff, dense_eff):
    # Build a DesignEvaluation with synthetic efficiencies via power choice.
    def pt(category, eff):
        return EfficiencyPoint(
            label=label, category=category, speedup=1.0,
            power_mw=1.6384e3 / eff, area_um2=1e6,
        )
    return DesignEvaluation(
        label=label,
        points=(pt(ModelCategory.B.value, sparse_eff), pt(ModelCategory.DENSE.value, dense_eff)),
    )


class TestSelectOptimal:
    def test_picks_balanced_product(self):
        evals = [
            _eval("fast-but-hot", 30.0, 4.0),
            _eval("balanced", 25.0, 8.0),
            _eval("cold-but-slow", 12.0, 10.0),
        ]
        best = select_optimal(evals, ModelCategory.B)
        assert best.label == "balanced"

    def test_dominated_points_never_win(self):
        evals = [_eval("good", 20.0, 8.0), _eval("strictly-worse", 18.0, 7.0)]
        assert select_optimal(evals, ModelCategory.B).label == "good"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            select_optimal([], ModelCategory.B)


class TestReportTable:
    def test_format_alignment(self):
        rows = [{"arch": "B(4,0,1,on)", "speedup": 2.5}, {"arch": "x", "speedup": 10.0}]
        text = format_table(rows, title="Fig5")
        lines = text.splitlines()
        assert lines[0] == "Fig5"
        assert "B(4,0,1,on)" in lines[3]
        assert "2.5" in text and "10" in text

    def test_empty_rows(self):
        assert format_table([], title="t") == "t"


class TestEvalSettings:
    def test_quick_suite_is_subset(self):
        quick = EvalSettings(quick=True)
        full = EvalSettings(quick=False)
        q = {b.name for b in quick.suite(ModelCategory.B)}
        f = {b.name for b in full.suite(ModelCategory.B)}
        assert q <= f and len(q) == 3

    def test_a_suite_excludes_bert(self):
        names = {b.name for b in EvalSettings(quick=False).suite(ModelCategory.A)}
        assert "BERT" not in names
