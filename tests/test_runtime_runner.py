"""Invariant tests for the parallel sweep runner.

The load-bearing guarantees:

* a full ``sparse_b_space`` sweep through :class:`SweepRunner` is
  bitwise-identical to the serial loop for any worker count and chunking
  (same seeds -- every evaluation is an independent deterministic function
  of its design point);
* a second invocation against the same cache directory is served almost
  entirely from the persistent cache (>= 90% hit rate, the PR's
  acceptance bar).

The suite is restricted to BERT (the cheapest Table IV benchmark: two
unique encoder layers) so the *full* 42-point configuration space stays
affordable; the invariants do not depend on which network is simulated.
"""

import pytest

from repro.config import ModelCategory, sparse_b
from repro.dse.evaluate import EvalSettings
from repro.dse.explorer import design_space, sparse_b_space
from repro.runtime.runner import SweepRunner, chunk_indices, default_chunk_size
from repro.sim import engine
from repro.sim.engine import SimulationOptions

CHEAP = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=5)
SETTINGS = EvalSettings(quick=True, options=CHEAP, networks=("BERT",))
CATEGORIES = (ModelCategory.B, ModelCategory.DENSE)


@pytest.fixture
def cold_engine():
    """No inherited memoization or persistent cache; restore afterwards."""
    previous = engine.set_persistent_cache(None)
    engine.clear_memo_cache()
    yield
    engine.clear_memo_cache()
    engine.set_persistent_cache(previous)


class TestLifecycle:
    def test_close_without_waiting_is_nonblocking_and_idempotent(self):
        runner = SweepRunner(workers=2, use_cache=False, keep_pool=True)
        runner._ensure_pool()
        runner.close(wait=False)  # the bounded-shutdown straggler path
        runner.close()  # idempotent across modes
        assert runner._pool is None


class TestChunking:
    def test_partition_is_exact_and_ordered(self):
        chunks = chunk_indices(10, 3)
        assert chunks == [(0, 1, 2), (3, 4, 5), (6, 7, 8), (9,)]
        assert [i for chunk in chunks for i in chunk] == list(range(10))

    def test_deterministic(self):
        assert chunk_indices(42, 5) == chunk_indices(42, 5)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            chunk_indices(5, 0)

    def test_default_size_gives_several_chunks_per_worker(self):
        assert default_chunk_size(42, 4) == 3
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestRunnerBasics:
    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=-1)

    def test_empty_sweep(self, cold_engine):
        outcome = SweepRunner(workers=0, use_cache=False).run([], CATEGORIES)
        assert outcome.evaluations == () and len(outcome) == 0

    def test_progress_reported_serially(self, cold_engine, tmp_path):
        seen = []
        runner = SweepRunner(
            workers=0, cache_dir=tmp_path, progress=lambda d, t: seen.append((d, t))
        )
        configs = sparse_b_space()[:3]
        runner.run(configs, (ModelCategory.B,), SETTINGS)
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestParallelEqualsSerial:
    """The tentpole invariant, over the full Fig. 5 configuration space."""

    @pytest.fixture(scope="class")
    def serial_outcome(self):
        previous = engine.set_persistent_cache(None)
        engine.clear_memo_cache()
        try:
            runner = SweepRunner(workers=0, use_cache=False)
            yield runner.run(design_space("b"), CATEGORIES, SETTINGS)
        finally:
            engine.clear_memo_cache()
            engine.set_persistent_cache(previous)

    def test_full_space_is_covered(self, serial_outcome):
        configs = design_space("b")
        assert len(configs) == len(serial_outcome)
        assert [e.label for e in serial_outcome.evaluations] == [
            c.label for c in configs
        ]

    def test_workers_4_bitwise_identical_then_90pct_cached(
        self, serial_outcome, cold_engine, tmp_path
    ):
        configs = design_space("b")
        progress = []
        first = SweepRunner(
            workers=4, cache_dir=tmp_path, progress=lambda d, t: progress.append((d, t))
        ).run(configs, CATEGORIES, SETTINGS)
        assert first.evaluations == serial_outcome.evaluations
        assert first.workers == 4 and first.chunks > 1
        assert progress[-1] == (len(configs), len(configs))
        assert first.cache_stats.puts > 0

        # Second invocation, fresh processes, same cache dir: the PR's
        # acceptance bar is >= 90% persistent-cache hits.
        engine.clear_memo_cache()
        second = SweepRunner(workers=4, cache_dir=tmp_path).run(
            configs, CATEGORIES, SETTINGS
        )
        assert second.evaluations == serial_outcome.evaluations
        assert second.cache_stats.lookups > 0
        assert second.cache_stats.hit_rate >= 0.9

    def test_odd_worker_count_and_chunk_size_identical(
        self, serial_outcome, cold_engine, tmp_path
    ):
        configs = design_space("b")
        outcome = SweepRunner(workers=3, cache_dir=tmp_path, chunk_size=5).run(
            configs, CATEGORIES, SETTINGS
        )
        assert outcome.evaluations == serial_outcome.evaluations

    def test_serial_with_cache_identical(self, serial_outcome, cold_engine, tmp_path):
        configs = design_space("b")
        outcome = SweepRunner(workers=1, cache_dir=tmp_path).run(
            configs, CATEGORIES, SETTINGS
        )
        assert outcome.evaluations == serial_outcome.evaluations
        # Everything was computed once and written through to disk.
        assert outcome.cache_stats.puts == outcome.cache_stats.misses > 0


class TestNoCache:
    def test_use_cache_false_overrides_installed_global_cache(self, tmp_path):
        """A use_cache=False run must neither read nor write a cache that
        happens to be installed globally (e.g. by a previous runner)."""
        from repro.runtime.cache import PersistentLayerCache

        installed = PersistentLayerCache(tmp_path)
        previous = engine.set_persistent_cache(installed)
        engine.clear_memo_cache()
        try:
            outcome = SweepRunner(workers=0, use_cache=False).run(
                sparse_b_space()[:2], (ModelCategory.B,), SETTINGS
            )
            assert outcome.cache_stats.lookups == 0
            assert installed.stats.lookups == 0 and installed.stats.puts == 0
            assert len(installed) == 0, "nothing may be written to disk"
            # The global cache survives the run untouched.
            assert engine.get_persistent_cache() is installed
        finally:
            engine.clear_memo_cache()
            engine.set_persistent_cache(previous)

    def test_use_cache_false_parallel_workers_write_nothing(self, tmp_path):
        from repro.runtime.cache import PersistentLayerCache

        installed = PersistentLayerCache(tmp_path)
        previous = engine.set_persistent_cache(installed)
        engine.clear_memo_cache()
        try:
            # Forked workers inherit the installed cache; _worker_init must
            # explicitly clear it for a no-cache run.
            outcome = SweepRunner(workers=2, use_cache=False).run(
                sparse_b_space()[:4], (ModelCategory.B,), SETTINGS
            )
            assert outcome.cache_stats.lookups == 0
            assert len(installed) == 0, "workers must not write through the fork"
        finally:
            engine.clear_memo_cache()
            engine.set_persistent_cache(previous)


class TestCrossProcessReuse:
    def test_serial_then_parallel_reuses_serial_results(self, cold_engine, tmp_path):
        configs = sparse_b_space()[:6]
        serial = SweepRunner(workers=0, cache_dir=tmp_path).run(
            configs, (ModelCategory.B,), SETTINGS
        )
        assert serial.cache_stats.puts > 0

        engine.clear_memo_cache()
        parallel = SweepRunner(workers=2, cache_dir=tmp_path).run(
            configs, (ModelCategory.B,), SETTINGS
        )
        assert parallel.evaluations == serial.evaluations
        assert parallel.cache_stats.misses == 0
        assert parallel.cache_stats.hit_rate == 1.0
