"""Tests for the offline weight-compression artifact (Fig. 3 step 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import sparse_a, sparse_b
from repro.sim.compaction import compact_schedule
from repro.sim.preprocess import CompressedWeights, expand, preprocess_weights


def mask(seed=0, t=24, lanes=8, n=6, density=0.25):
    rng = np.random.default_rng(seed)
    return rng.random((t, lanes, n)) < density


class TestRoundTrip:
    def test_lossless(self):
        m = mask()
        comp = preprocess_weights(m, sparse_b(4, 0, 1))
        np.testing.assert_array_equal(expand(comp), m)

    def test_lossless_with_lane_borrowing(self):
        m = mask(seed=3)
        comp = preprocess_weights(m, sparse_b(2, 2, 0))
        np.testing.assert_array_equal(expand(comp), m)

    def test_all_zero_tile(self):
        m = np.zeros((10, 4, 2), dtype=bool)
        comp = preprocess_weights(m, sparse_b(4, 0, 0))
        assert comp.nonzeros == 0
        np.testing.assert_array_equal(expand(comp), m)

    def test_dense_tile_is_identity_schedule(self):
        m = np.ones((8, 4, 2), dtype=bool)
        comp = preprocess_weights(m, sparse_b(2, 0, 0))
        assert comp.steps == 8
        assert (comp.lane_offset == 0).all()
        assert (comp.col_offset == 0).all()


class TestStructure:
    def test_steps_match_scheduler(self):
        m = mask(seed=5)
        comp = preprocess_weights(m, sparse_b(4, 0, 1))
        ref = compact_schedule(m, 4, 0, 1, return_schedule=True)
        assert comp.steps == len(ref.schedule)

    def test_offsets_bounded_by_distances(self):
        m = mask(seed=6, density=0.4)
        db2, db3 = 2, 1
        comp = preprocess_weights(m, sparse_b(2, db2, db3))
        occupied = comp.slots >= 0
        assert comp.lane_offset[occupied].max() <= db2
        assert comp.col_offset[occupied].max() <= db3

    def test_tree_flag_only_for_col_borrows(self):
        m = mask(seed=7)
        comp = preprocess_weights(m, sparse_b(2, 0, 2))
        np.testing.assert_array_equal(comp.tree_flag, comp.col_offset > 0)

    def test_metadata_width_matches_overhead_model(self):
        comp = preprocess_weights(mask(), sparse_b(2, 0, 1))
        assert comp.metadata_bits == 3  # Table III

    def test_compression_ratio(self):
        m = mask(density=0.2)
        comp = preprocess_weights(m, sparse_b(4, 0, 0))
        # 20% density with 8+3 bits per kept element vs 8 dense bits.
        expected = 8.0 / (m.mean() * (8 + comp.metadata_bits))
        assert comp.compression_ratio == pytest.approx(expected, rel=0.01)
        assert comp.compression_ratio > 3.0

    def test_rejects_wrong_inputs(self):
        with pytest.raises(ValueError):
            preprocess_weights(np.ones((4, 4), dtype=bool), sparse_b(2, 0, 0))
        with pytest.raises(ValueError):
            preprocess_weights(mask(), sparse_a(2, 0, 0))


@settings(max_examples=30, deadline=None)
@given(
    t=st.integers(1, 16),
    lanes=st.integers(1, 8),
    n=st.integers(1, 6),
    db1=st.integers(1, 4),
    db2=st.integers(0, 2),
    db3=st.integers(0, 2),
    seed=st.integers(0, 2**31),
    density=st.floats(0.0, 1.0),
)
def test_roundtrip_property(t, lanes, n, db1, db2, db3, seed, density):
    """Compression is lossless for every mask and borrowing config."""
    rng = np.random.default_rng(seed)
    m = rng.random((t, lanes, n)) < density
    comp = preprocess_weights(m, sparse_b(db1, db2, db3))
    np.testing.assert_array_equal(expand(comp), m)
    assert comp.nonzeros == int(m.sum())
