"""Tests for the Transformer+ReLU workload variant (Table I coverage)."""

import pytest

from repro.config import ModelCategory, SPARSE_A_STAR, sparse_a
from repro.sim.engine import SimulationOptions, simulate_network
from repro.workloads.models import bert_base, relu_transformer

FAST = SimulationOptions(passes_per_gemm=2, max_t_steps=48)


class TestDefinition:
    def test_target_ratios(self):
        net = relu_transformer()
        assert net.weight_sparsity == pytest.approx(0.80, abs=0.02)
        assert net.act_sparsity == pytest.approx(0.45, abs=0.03)

    def test_structure(self):
        net = relu_transformer(layers=6, hidden=256)
        # attention + ffn per encoder plus the classifier head.
        assert len(net.layers) == 13

    def test_parametrization_scales_macs(self):
        small = relu_transformer(layers=4, hidden=256)
        big = relu_transformer(layers=8, hidden=256)
        assert big.macs > 1.8 * small.macs


class TestBehaviour:
    def test_activation_sparsity_exploitable(self):
        # Unlike BERT (GeLU, Table IV A-sparsity 0%), the ReLU transformer
        # gives Sparse.A something to skip.
        relu_run = simulate_network(
            relu_transformer(layers=4), SPARSE_A_STAR, ModelCategory.A, FAST
        )
        bert_run = simulate_network(bert_base(), SPARSE_A_STAR, ModelCategory.A, FAST)
        assert relu_run.speedup > 1.1
        assert bert_run.speedup == pytest.approx(1.0, abs=0.02)

    def test_dynamic_gemms_stay_dense_under_pruning(self):
        net = relu_transformer(layers=2)
        res = simulate_network(net, sparse_a(2, 1, 0, shuffle=True), ModelCategory.AB, FAST)
        assert res.speedup > 1.0
