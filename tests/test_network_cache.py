"""Tests for the network-granularity cache tier.

The load-bearing guarantees:

* a warm ``simulate_network`` resolves from the network tier in one read --
  zero layer-tier lookups, zero layer simulations -- and is bitwise equal
  to the cold result;
* a corrupt network entry falls back to the layer tier (and repairs
  itself), a corrupt layer entry underneath falls back to simulation;
* the unified :class:`CacheStats` tier accounting is consistent (layer
  share + network share == totals, through merge/snapshot/delta and the
  worker-chunk dict round trip);
* ``network_key`` covers exactly the result's inputs and display metadata;
* parallel sweeps with the network tier enabled stay bitwise-identical to
  the serial loop, warm or cold.
"""

import json

import pytest

from repro.api import Session
from repro.config import GRIFFIN, ModelCategory, sparse_b
from repro.dse.evaluate import EvalSettings
from repro.runtime.cache import (
    CacheStats,
    PersistentLayerCache,
    network_result_from_dict,
    network_result_to_dict,
)
from repro.sim import engine
from repro.sim.engine import SimulationOptions, network_key, simulate_network
from repro.workloads.registry import benchmark

OPTIONS = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=11)
CONFIG = sparse_b(4, 0, 1, shuffle=True)
SETTINGS = EvalSettings(quick=True, options=OPTIONS, networks=("BERT",))
NETWORK = benchmark("BERT").network


@pytest.fixture
def cold_engine():
    """No inherited memoization or persistent cache; restore afterwards."""
    previous = engine.set_persistent_cache(None)
    engine.clear_memo_cache()
    yield
    engine.clear_memo_cache()
    engine.set_persistent_cache(previous)


def key_of(network=NETWORK, config=CONFIG, category=ModelCategory.B,
           options=OPTIONS):
    return network_key(network, config, category, options)


class TestNetworkKey:
    def test_deterministic(self):
        assert key_of() == key_of()

    def test_sensitive_to_every_input(self):
        base = key_of()
        assert base != key_of(network=benchmark("AlexNet").network)
        assert base != key_of(config=sparse_b(4, 0, 2, shuffle=True))
        assert base != key_of(category=ModelCategory.DENSE)
        assert base != key_of(
            options=SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=12)
        )

    def test_sensitive_to_display_label(self):
        """Unlike layer keys, network keys cover the config label: the
        cached NetworkSimResult stores it, so it must round-trip."""
        named = sparse_b(4, 0, 1, shuffle=True, name="Sparse.B*")
        assert key_of() != key_of(config=named)

    def test_griffin_morphs_get_distinct_keys(self):
        conf_b = GRIFFIN.config_for(ModelCategory.B)
        conf_ab = GRIFFIN.config_for(ModelCategory.AB)
        assert key_of(config=conf_b) != key_of(config=conf_ab)


class TestSerialization:
    def test_round_trip_is_exact(self, cold_engine):
        result = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        assert network_result_from_dict(network_result_to_dict(result)) == result

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            network_result_from_dict({"v": 999})


class TestNetworkTierRoundTrip:
    def test_warm_run_is_one_read_zero_layer_lookups(self, cold_engine, tmp_path):
        writer = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(writer)
        first = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        # Cold: network miss, layer misses, both tiers written through.
        assert writer.stats.network_misses == 1
        assert writer.stats.network_puts == 1
        assert writer.stats.layer_misses == writer.stats.layer_puts > 0

        # New process simulated by: cold memo + a fresh cache object.
        engine.clear_memo_cache()
        reader = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(reader)
        second = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        assert second == first  # floats survive the JSON round trip exactly
        assert reader.stats.network_hits == 1
        assert reader.stats.layer_lookups == 0, "whole network in one read"
        assert reader.stats.hits == 1 and reader.stats.misses == 0

    def test_layer_only_cache_still_works(self, cold_engine, tmp_path):
        """A cache object without the network tier keeps the old behavior."""

        class LayerOnly:
            def __init__(self, inner):
                self.inner = inner

            def get(self, key):
                return self.inner.get(key)

            def put(self, key, result):
                self.inner.put(key, result)

        backing = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(LayerOnly(backing))
        first = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        assert backing.stats.network_lookups == 0
        assert backing.stats.layer_puts > 0

        engine.clear_memo_cache()
        second = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        assert second == first
        assert backing.stats.network_lookups == 0

    def test_display_names_round_trip(self, cold_engine, tmp_path):
        named = sparse_b(4, 0, 1, shuffle=True, name="Sparse.B*")
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        first = simulate_network(NETWORK, named, ModelCategory.B, OPTIONS)

        engine.clear_memo_cache()
        fresh = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(fresh)
        second = simulate_network(NETWORK, named, ModelCategory.B, OPTIONS)
        assert fresh.stats.network_hits == 1
        assert second.config == "Sparse.B*"
        assert second.network == first.network == NETWORK.name
        assert [l.name for l in second.layers] == [l.name for l in first.layers]


class TestCorruptionFallback:
    def test_corrupt_network_entry_falls_back_to_layer_tier(
        self, cold_engine, tmp_path
    ):
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        first = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)

        path = cache.network_path_for(key_of())
        assert path.is_file()
        path.write_text("{ this is not json")

        engine.clear_memo_cache()
        fresh = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(fresh)
        second = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        assert second == first
        # The network tier erred and missed; the layer tier answered; the
        # repaired network entry went back to disk.
        assert fresh.stats.network_errors == 1
        assert fresh.stats.network_misses == 1
        assert fresh.stats.layer_hits > 0 and fresh.stats.layer_misses == 0
        assert fresh.stats.network_puts == 1
        assert json.loads(path.read_text())["network"] == NETWORK.name

    def test_both_tiers_corrupt_recomputes_from_scratch(
        self, cold_engine, tmp_path
    ):
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        first = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)

        for entry in list(cache.networks_dir.glob("*/*.json")) + list(
            cache.layers_dir.glob("*/*.json")
        ):
            entry.write_text("garbage")

        engine.clear_memo_cache()
        fresh = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(fresh)
        second = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        assert second == first
        assert fresh.stats.network_errors == 1
        assert fresh.stats.layer_errors > 0
        assert fresh.stats.hits == 0

    def test_wrong_network_schema_version_is_a_miss(self, cold_engine, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        first = simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        path = cache.network_path_for(key_of())
        stale = json.loads(path.read_text())
        stale["v"] = 999
        path.write_text(json.dumps(stale))

        engine.clear_memo_cache()
        fresh = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(fresh)
        assert simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS) == first
        assert fresh.stats.network_errors == 1


class TestCrossTierStats:
    def test_tier_shares_sum_to_totals(self, cold_engine, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        engine.clear_memo_cache()
        simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)

        s = cache.stats
        assert s.layer_hits + s.network_hits == s.hits
        assert s.layer_misses + s.network_misses == s.misses
        assert s.layer_puts + s.network_puts == s.puts
        assert s.layer_errors + s.network_errors == s.errors
        assert s.layer_lookups + s.network_lookups == s.lookups

    def test_merge_snapshot_delta_dict_preserve_tier_breakdown(self):
        stats = CacheStats(hits=10, misses=2, puts=2, errors=1,
                           network_hits=4, network_misses=1,
                           network_puts=1, network_errors=1)
        snap = stats.snapshot()
        stats.merge(CacheStats(hits=3, misses=0, puts=0, errors=0,
                               network_hits=3))
        delta = stats.delta(snap)
        assert delta == CacheStats(hits=3, network_hits=3)
        assert CacheStats.from_dict(stats.as_dict()) == stats
        assert stats.layer_hits == 6 and stats.network_hits == 7

    def test_old_style_dict_defaults_network_fields_to_zero(self):
        stats = CacheStats.from_dict({"hits": 5, "misses": 1, "puts": 1})
        assert stats.network_hits == 0 and stats.layer_hits == 5

    def test_session_outcome_carries_tier_breakdown(self, cold_engine, tmp_path):
        session = Session(cache_dir=tmp_path)
        cold = session.evaluate([CONFIG], (ModelCategory.B,), SETTINGS)
        assert cold.cache_stats.network_puts > 0
        assert cold.cache_stats.layer_puts > 0

        engine.clear_memo_cache()
        warm = session.evaluate([CONFIG], (ModelCategory.B,), SETTINGS)
        assert warm.cache_stats.network_hits > 0
        assert warm.cache_stats.layer_lookups == 0
        assert warm.cache_stats.hit_rate == 1.0
        assert session.stats.network_hits == warm.cache_stats.network_hits

    def test_clear_and_len_cover_both_tiers(self, cold_engine, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        simulate_network(NETWORK, CONFIG, ModelCategory.B, OPTIONS)
        layer_entries = sum(1 for _ in cache.layers_dir.glob("*/*.json"))
        network_entries = sum(1 for _ in cache.networks_dir.glob("*/*.json"))
        assert network_entries == 1 and layer_entries > 0
        assert len(cache) == layer_entries + network_entries
        assert cache.clear() == layer_entries + network_entries
        assert len(cache) == 0


class TestParallelEqualsSerialWithNetworkTier:
    def test_parallel_equals_serial_cold_and_warm(self, cold_engine, tmp_path):
        designs = [sparse_b(2, 0, 0), "Griffin", sparse_b(4, 0, 1, shuffle=True)]
        cats = (ModelCategory.B, ModelCategory.DENSE)
        serial = Session(workers=0, cache_dir=tmp_path / "s").evaluate(
            designs, cats, SETTINGS
        )
        engine.clear_memo_cache()
        parallel_cold = Session(workers=2, cache_dir=tmp_path / "p").evaluate(
            designs, cats, SETTINGS
        )
        assert parallel_cold.evaluations == serial.evaluations
        assert parallel_cold.cache_stats.network_puts > 0

        # Warm parallel run: answered entirely from the network tier, in
        # worker processes, still bitwise-identical.
        engine.clear_memo_cache()
        parallel_warm = Session(workers=2, cache_dir=tmp_path / "p").evaluate(
            designs, cats, SETTINGS
        )
        assert parallel_warm.evaluations == serial.evaluations
        assert parallel_warm.cache_stats.network_hits > 0
        assert parallel_warm.cache_stats.misses == 0
        assert parallel_warm.cache_stats.layer_lookups == 0
