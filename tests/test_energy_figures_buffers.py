"""Tests for the energy metrics, ASCII figures and buffer-occupancy model."""

import numpy as np
import pytest

from repro.config import ModelCategory, SPARSE_B_STAR, dense
from repro.dse.figures import bar_chart, scatter_plot
from repro.hw.cost import cost_of
from repro.hw.energy import EnergyReport, energy_ratio, inference_energy
from repro.memory.buffers import (
    BufferOccupancy,
    expected_drift,
    fullness_stall_fraction,
    occupancy_from_progress,
)
from repro.sim.engine import SimulationOptions, simulate_network
from repro.workloads.models import alexnet

FAST = SimulationOptions(passes_per_gemm=2, max_t_steps=48)


class TestEnergy:
    def test_latency_at_800mhz(self):
        report = EnergyReport("x", "net", cycles=800_000.0, power_mw=200.0)
        assert report.latency_ms == pytest.approx(1.0)
        assert report.energy_mj == pytest.approx(0.2)
        assert report.edp == pytest.approx(0.2)

    def test_sparse_inference_saves_energy(self):
        net = alexnet()
        sparse_run = simulate_network(net, SPARSE_B_STAR, ModelCategory.B, FAST)
        dense_run = simulate_network(net, dense(), ModelCategory.B, FAST)
        sparse_e = inference_energy(sparse_run, SPARSE_B_STAR)
        dense_e = inference_energy(dense_run, dense())
        # Speedup ~2.3x at ~1.39x power: net energy win.
        assert energy_ratio(sparse_e, dense_e) > 1.2

    def test_gated_power_used_on_dense_category(self):
        net = alexnet()
        run = simulate_network(net, SPARSE_B_STAR, ModelCategory.DENSE, FAST)
        report = inference_energy(run, SPARSE_B_STAR)
        assert report.power_mw < cost_of(SPARSE_B_STAR).total_power_mw

    def test_energy_ratio_guards(self):
        good = EnergyReport("a", "n", 1000.0, 100.0)
        bad = EnergyReport("b", "n", 0.0, 100.0)
        with pytest.raises(ValueError):
            energy_ratio(bad, good)


class TestFigures:
    def test_bar_chart_scales_to_peak(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, title="T", width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("#") == 10  # the peak bar is full width
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_bar_chart_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})

    def test_scatter_contains_all_tags(self):
        pts = [("one", 1.0, 2.0), ("two", 3.0, 1.0), ("three", 2.0, 4.0)]
        text = scatter_plot(pts, title="S", x_label="px", y_label="py")
        assert "A: one" in text and "C: three" in text
        grid_chars = "".join(text.splitlines())
        for tag in "ABC":
            assert tag in grid_chars

    def test_scatter_single_point(self):
        text = scatter_plot([("p", 1.0, 1.0)])
        assert "A: p" in text


class TestBufferOccupancy:
    def test_from_progress(self):
        occ = occupancy_from_progress(np.array([10, 12, 15]), depth=9)
        assert occ.peak_spread == pytest.approx(6.0)
        assert occ.overflow == 0.0
        assert 0 < occ.utilization <= 1.0

    def test_overflow_detected(self):
        occ = occupancy_from_progress(np.array([0, 20]), depth=9)
        assert occ.overflow == pytest.approx(12.0)

    def test_empty_progress(self):
        occ = occupancy_from_progress(np.array([]), depth=5)
        assert occ.mean_occupancy == 0.0

    def test_fullness_stall_zero_when_fits(self):
        assert fullness_stall_fraction(np.array([30, 32, 31]), 96, depth=9) == 0.0

    def test_fullness_stall_grows_with_drift(self):
        small = fullness_stall_fraction(np.array([10, 25]), 96, depth=9)
        large = fullness_stall_fraction(np.array([10, 60]), 96, depth=9)
        assert 0 < small < large <= 0.25

    def test_expected_drift_scaling(self):
        assert expected_drift(100, 0.2, 1) == 0.0
        d16 = expected_drift(100, 0.2, 16)
        d256 = expected_drift(100, 0.2, 256)
        assert 0 < d16 < d256

    def test_zero_depth_guard(self):
        assert fullness_stall_fraction(np.array([1, 50]), 96, depth=0) == 0.0
        assert BufferOccupancy(0, 0.0, 0.0).utilization == 0.0
