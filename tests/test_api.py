"""Tests for the unified session/experiment API (`repro.api`).

The load-bearing guarantees:

* `parse_design` parses configs, Griffin, starred points, and baseline
  names uniformly (case-insensitive);
* two sessions with different cache directories are fully isolated (no
  bleed-through in either direction) and never leave state installed in
  the engine after a call;
* `session.evaluate` is bitwise-identical between the serial and the
  parallel path for a mixed design list (config + Griffin + baseline);
* `INHERIT` sessions use whatever cache is installed engine-wide (the
  embedding mode) and never install or remove state themselves.

(The `evaluate_arch` / `evaluate_griffin` shims and their identity tests
were removed in v2.0 at the end of their deprecation cycle.)
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.api import INHERIT, ExperimentSpec, Session
from repro.baselines import baseline
from repro.config import (
    GRIFFIN,
    SPARSE_A_STAR,
    SPARSE_B_STAR,
    ModelCategory,
    sparse_b,
)
from repro.dse.evaluate import (
    BaselineDesign,
    ConfigDesign,
    Design,
    EvalSettings,
    GriffinDesign,
    as_design,
    evaluate_design,
    parse_design,
)
from repro.runtime.cache import PersistentLayerCache
from repro.sim import engine
from repro.sim.engine import SimulationOptions

CHEAP = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=7)
SETTINGS = EvalSettings(quick=True, options=CHEAP, networks=("BERT",))
CATS = (ModelCategory.B, ModelCategory.DENSE)


@pytest.fixture
def cold_engine():
    """No inherited memoization or persistent cache; restore afterwards."""
    previous = engine.set_persistent_cache(None)
    engine.clear_memo_cache()
    yield
    engine.clear_memo_cache()
    engine.set_persistent_cache(previous)


class TestParseDesign:
    def test_notation(self):
        design = parse_design("B(4,0,1,on)")
        assert isinstance(design, ConfigDesign)
        assert design.label == "B(4,0,1,on)"

    def test_dense_and_baseline_aliases(self):
        assert parse_design("Dense").label == "Baseline"
        assert parse_design("baseline").label == "Baseline"

    def test_griffin_any_case(self):
        for name in ("Griffin", "griffin", "GRIFFIN"):
            design = parse_design(name)
            assert isinstance(design, GriffinDesign)
            assert design.config_for(ModelCategory.B) == GRIFFIN.conf_b

    def test_starred_points(self):
        assert parse_design("Sparse.B*").config == SPARSE_B_STAR
        assert parse_design("b*").config == SPARSE_B_STAR
        assert parse_design("sparse.a*").config == SPARSE_A_STAR

    def test_baseline_names(self):
        for name in ("SparTen", "tensordash", "BitTactical", "Cnvlutin",
                     "cambricon-x"):
            design = parse_design(name)
            assert isinstance(design, BaselineDesign)
        assert parse_design("sparten").label == "SparTen"

    def test_unknown_design_lists_choices(self):
        with pytest.raises(ValueError, match="Griffin"):
            parse_design("NoSuchDesign")

    def test_all_parsed_designs_satisfy_protocol(self):
        for name in ("Dense", "Griffin", "Sparse.B*", "SparTen", "B(2,0,0)"):
            assert isinstance(parse_design(name), Design)


class TestAsDesign:
    def test_coercions(self):
        config = sparse_b(2, 0, 0)
        assert as_design(config) == ConfigDesign(config)
        assert as_design(GRIFFIN) == GriffinDesign(GRIFFIN)
        assert as_design(baseline("SparTen")) == BaselineDesign(baseline("SparTen"))
        assert isinstance(as_design("Griffin"), GriffinDesign)

    def test_design_passes_through(self):
        design = ConfigDesign(sparse_b(2, 0, 0))
        assert as_design(design) is design

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_design(42)


class TestSessionEvaluate:
    def test_empty(self, cold_engine):
        outcome = Session(use_cache=False).evaluate([], CATS, SETTINGS)
        assert outcome.evaluations == ()

    def test_parallel_equals_serial_mixed_designs(self, cold_engine, tmp_path):
        designs = [sparse_b(2, 0, 0), "Griffin", "SparTen", "Sparse.B*"]
        serial = Session(workers=0, cache_dir=tmp_path / "s").evaluate(
            designs, CATS, SETTINGS
        )
        engine.clear_memo_cache()
        parallel = Session(workers=2, cache_dir=tmp_path / "p").evaluate(
            designs, CATS, SETTINGS
        )
        assert parallel.evaluations == serial.evaluations
        assert [e.label for e in serial.evaluations] == [
            "B(2,0,0,off)", "Griffin", "SparTen", "Sparse.B*"
        ]

    def test_cache_isolation_between_sessions(self, cold_engine, tmp_path):
        config = sparse_b(2, 0, 1)
        one = Session(cache_dir=tmp_path / "one")
        two = Session(cache_dir=tmp_path / "two")

        first = one.evaluate([config], (ModelCategory.B,), SETTINGS)
        assert first.cache_stats.puts > 0
        assert one.stats.puts == first.cache_stats.puts

        # A different cache dir must not see session one's entries.
        engine.clear_memo_cache()
        second = two.evaluate([config], (ModelCategory.B,), SETTINGS)
        assert second.cache_stats.hits == 0
        assert second.cache_stats.puts > 0
        assert second.evaluations == first.evaluations

        # ... and warms up independently.
        engine.clear_memo_cache()
        warm = two.evaluate([config], (ModelCategory.B,), SETTINGS)
        assert warm.cache_stats.hit_rate == 1.0
        assert two.stats.hits == warm.cache_stats.hits

        # Session calls never leave state installed in the engine.
        assert engine.get_persistent_cache() is None

    def test_session_stats_accumulate_across_calls(self, cold_engine, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.evaluate([sparse_b(2, 0, 0)], (ModelCategory.B,), SETTINGS)
        engine.clear_memo_cache()
        session.evaluate([sparse_b(2, 0, 0)], (ModelCategory.B,), SETTINGS)
        assert session.stats.puts > 0 and session.stats.hits > 0

    def test_overlapping_serial_calls_count_stats_exactly_once(
        self, cold_engine, tmp_path
    ):
        """Concurrent serial evaluations share one cache-stats counter;
        the session totals must equal it, not a per-call double count.
        A barrier in the progress callbacks forces both calls to finish
        evaluating before either absorbs, maximizing window overlap."""
        session = Session(cache_dir=tmp_path)
        barrier = threading.Barrier(2, timeout=30.0)

        def rendezvous(done, total):
            barrier.wait()

        designs = [sparse_b(2, 0, 0), sparse_b(2, 1, 0)]
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(
                    session.evaluate, [design], (ModelCategory.B,),
                    SETTINGS, None, rendezvous,
                )
                for design in designs
            ]
            for future in futures:
                future.result(timeout=120)
        totals = session.cache.stats
        assert session.stats.puts > 0
        assert (session.stats.hits, session.stats.misses,
                session.stats.puts) == (totals.hits, totals.misses, totals.puts)

    def test_simulate_through_cache(self, cold_engine, tmp_path):
        session = Session(cache_dir=tmp_path)
        result = session.simulate("BERT", "Griffin", ModelCategory.B, CHEAP)
        assert result.speedup > 1.0
        assert session.stats.puts > 0
        engine.clear_memo_cache()
        again = session.simulate("BERT", "Griffin", ModelCategory.B, CHEAP)
        assert again == result
        assert session.stats.hits > 0

    def test_use_cache_false_touches_nothing(self, cold_engine, tmp_path):
        installed = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(installed)
        outcome = Session(use_cache=False).evaluate(
            [sparse_b(2, 0, 0)], (ModelCategory.B,), SETTINGS
        )
        assert outcome.cache_stats.lookups == 0
        assert installed.stats.lookups == 0 and len(installed) == 0
        assert engine.get_persistent_cache() is installed

    def test_context_manager_installs_and_restores(self, cold_engine, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            assert engine.get_persistent_cache() is session.cache
        assert engine.get_persistent_cache() is None

    def test_rejects_negative_workers_and_bad_mode(self):
        with pytest.raises(ValueError):
            Session(workers=-1)
        with pytest.raises(ValueError):
            Session(use_cache="sometimes")


class TestInheritMode:
    def test_inherit_session_uses_installed_cache(self, cold_engine, tmp_path):
        """An INHERIT session evaluates through whatever cache is installed
        engine-wide, without installing or removing anything itself."""
        installed = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(installed)
        session = Session(use_cache=INHERIT)
        assert session.cache is None and session.cache_dir is None
        session.evaluate([sparse_b(2, 0, 0)], (ModelCategory.B,), SETTINGS)
        assert installed.stats.puts > 0
        assert engine.get_persistent_cache() is installed
        engine.set_persistent_cache(None)

    def test_shims_are_gone(self):
        """The v2.0 removal: the deprecated per-family entry points no
        longer exist anywhere in the public API."""
        import repro
        import repro.dse
        import repro.dse.evaluate as evaluate_module

        for namespace in (repro, repro.dse, evaluate_module):
            assert not hasattr(namespace, "evaluate_arch")
            assert not hasattr(namespace, "evaluate_griffin")
        assert not hasattr(repro, "default_session")


class TestExperimentSpec:
    MINI = {
        "name": "mini",
        "designs": ["Dense", "B(2,0,0)"],
        "categories": ["DNN.B"],
        "networks": ["BERT"],
        "options": {"passes_per_gemm": 1, "max_t_steps": 16, "seed": 7},
    }

    def test_round_trip(self):
        spec = ExperimentSpec.from_dict(self.MINI)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(json.dumps(spec.to_dict())) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment keys"):
            ExperimentSpec.from_dict({"designs": ["Dense"], "archs": []})
        with pytest.raises(ValueError, match="unknown simulation options"):
            ExperimentSpec.from_dict({"designs": ["Dense"], "options": {"x": 1}})

    def test_needs_designs_or_space(self):
        with pytest.raises(ValueError, match="designs"):
            ExperimentSpec.from_dict({"name": "empty"})

    def test_bad_design_name_fails_fast(self):
        with pytest.raises(ValueError, match="unrecognized design"):
            ExperimentSpec.from_dict({"designs": ["NoSuchDesign"]})

    def test_space_expansion_and_default_categories(self):
        spec = ExperimentSpec.from_dict({"name": "fig5", "space": "b"})
        designs = spec.resolve_designs()
        assert len(designs) > 10
        assert spec.resolve_categories() == (ModelCategory.B, ModelCategory.DENSE)

    def test_default_categories_without_space(self):
        spec = ExperimentSpec.from_dict({"designs": ["Dense"]})
        assert spec.resolve_categories() == (
            ModelCategory.DENSE, ModelCategory.B, ModelCategory.A, ModelCategory.AB
        )

    def test_quick_override_forces_smoke_sampling(self):
        spec = ExperimentSpec.from_dict(self.MINI)
        settings = spec.eval_settings(quick=True)
        assert settings.options.passes_per_gemm == 1
        assert settings.options.max_t_steps == 16
        assert settings.options.seed == 7

    def test_quick_false_forces_full_suite(self):
        spec = ExperimentSpec.from_dict(self.MINI)
        settings = spec.eval_settings(quick=False)
        assert settings.quick is False
        assert settings.options == spec.options
        assert spec.eval_settings(quick=None).quick is True

    def test_run_through_session(self, cold_engine, tmp_path):
        spec = ExperimentSpec.from_dict(self.MINI)
        session = Session(cache_dir=tmp_path)
        result = session.run(spec)
        assert [e.label for e in result.evaluations] == ["Baseline", "B(2,0,0,off)"]
        assert result.cache_stats.puts > 0
        rows = result.rows()
        assert rows[0]["Config"] == "Baseline" and "B speedup" in rows[0]
        assert "mini" in result.table()
        payload = result.to_dict()
        assert payload["experiment"] == "mini"
        assert payload["categories"] == ["DNN.B"]

        # Identical result through the raw evaluation path, served from the
        # session's cache (installed engine-wide by ``with session:``).
        hits_before = session.cache.stats.hits
        with session:
            engine.clear_memo_cache()
            direct = evaluate_design(
                sparse_b(2, 0, 0), (ModelCategory.B,), spec.eval_settings()
            )
        assert direct == result.evaluations[1]
        assert session.cache.stats.hits > hits_before

    def test_run_accepts_dict_and_path(self, cold_engine, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(self.MINI))
        session = Session(cache_dir=tmp_path / "cache")
        by_path = session.run(path)
        engine.clear_memo_cache()
        by_dict = session.run(self.MINI)
        assert by_path.evaluations == by_dict.evaluations


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestFig8Spec:
    def test_checked_in_spec_parses_and_covers_the_comparison(self):
        spec = ExperimentSpec.load(EXAMPLES / "experiments" / "fig8.json")
        labels = [design.label for design in spec.resolve_designs()]
        assert labels == [
            "Baseline", "Sparse.B*", "Sparse.A*", "Sparse.AB*", "Griffin",
            "BitTactical", "TensorDash", "SparTen",
        ]
        assert spec.resolve_categories() == (
            ModelCategory.DENSE, ModelCategory.B, ModelCategory.A, ModelCategory.AB
        )

    def test_checked_in_fig5_spec_expands_the_space(self):
        spec = ExperimentSpec.load(EXAMPLES / "experiments" / "fig5_sparse_b.json")
        assert spec.space == "b"
        assert len(spec.resolve_designs()) == 42
