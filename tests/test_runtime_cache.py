"""Tests for the persistent layer-result cache and its engine hooks."""

import json

import pytest

from repro.config import ModelCategory, sparse_b
from repro.gemm.layers import GemmShape
from repro.runtime.cache import (
    CacheStats,
    PersistentLayerCache,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.sim import engine
from repro.sim.engine import SimulationOptions, simulate_layer, simulation_key
from repro.workloads.models import NetworkLayer, RawGemmSpec

OPTIONS = SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=11)
CONFIG = sparse_b(4, 0, 1, shuffle=True)


def small_layer(name: str = "block") -> NetworkLayer:
    return NetworkLayer(
        spec=RawGemmSpec(name=name, shapes=(GemmShape(m=64, k=256, n=64),)),
        weight_density=0.25,
        act_density=1.0,
    )


@pytest.fixture
def isolated_engine():
    """Run with no persistent cache and a cold memo; restore afterwards."""
    previous = engine.set_persistent_cache(None)
    engine.clear_memo_cache()
    yield
    engine.clear_memo_cache()
    engine.set_persistent_cache(previous)


def key_of(layer: NetworkLayer) -> str:
    return simulation_key(
        tuple(layer.spec.gemms()), layer.weight_density, layer.act_density,
        CONFIG, ModelCategory.B, OPTIONS,
    )


class TestSimulationKey:
    def test_stable_across_processes_means_stable_repr(self):
        layer = small_layer()
        assert key_of(layer) == key_of(layer)

    def test_ignores_display_name(self):
        named = sparse_b(4, 0, 1, shuffle=True, name="Sparse.B*")
        layer = small_layer()
        gemms = tuple(layer.spec.gemms())
        k1 = simulation_key(gemms, 0.25, 1.0, CONFIG, ModelCategory.B, OPTIONS)
        k2 = simulation_key(gemms, 0.25, 1.0, named, ModelCategory.B, OPTIONS)
        assert k1 == k2

    def test_sensitive_to_every_simulation_input(self):
        layer = small_layer()
        gemms = tuple(layer.spec.gemms())
        base = simulation_key(gemms, 0.25, 1.0, CONFIG, ModelCategory.B, OPTIONS)
        assert base != simulation_key(gemms, 0.3, 1.0, CONFIG, ModelCategory.B, OPTIONS)
        assert base != simulation_key(
            gemms, 0.25, 1.0, sparse_b(4, 0, 2, shuffle=True), ModelCategory.B, OPTIONS
        )
        assert base != simulation_key(
            gemms, 0.25, 1.0, CONFIG, ModelCategory.DENSE, OPTIONS
        )
        assert base != simulation_key(
            gemms, 0.25, 1.0, CONFIG, ModelCategory.B,
            SimulationOptions(passes_per_gemm=1, max_t_steps=16, seed=12),
        )


class TestSerialization:
    def test_round_trip_is_exact(self, isolated_engine):
        result = simulate_layer(small_layer(), CONFIG, ModelCategory.B, OPTIONS)
        assert result_from_dict(result_to_dict(result)) == result

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            result_from_dict({"v": 999})


class TestDefaultCacheDir:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_falls_back_to_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"


class TestPersistentRoundTrip:
    def test_recompute_from_disk_is_identical(self, isolated_engine, tmp_path):
        layer = small_layer()
        writer = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(writer)
        first = simulate_layer(layer, CONFIG, ModelCategory.B, OPTIONS)
        assert writer.stats.misses == 1 and writer.stats.puts == 1
        assert len(writer) == 1

        # New process simulated by: cold memo + a fresh cache object.
        engine.clear_memo_cache()
        reader = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(reader)
        second = simulate_layer(layer, CONFIG, ModelCategory.B, OPTIONS)
        assert reader.stats == CacheStats(hits=1, misses=0, puts=0, errors=0)
        assert second == first  # bitwise: floats survive the JSON round trip

    def test_corrupt_entry_recomputes_gracefully(self, isolated_engine, tmp_path):
        layer = small_layer()
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        first = simulate_layer(layer, CONFIG, ModelCategory.B, OPTIONS)

        path = cache.path_for(key_of(layer))
        assert path.is_file()
        path.write_text("{ this is not json")

        engine.clear_memo_cache()
        fresh = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(fresh)
        second = simulate_layer(layer, CONFIG, ModelCategory.B, OPTIONS)
        assert second == first
        assert fresh.stats.errors == 1 and fresh.stats.misses == 1
        assert fresh.stats.puts == 1  # the repaired entry went back to disk
        assert json.loads(path.read_text())["dense_cycles"] == first.dense_cycles

    def test_wrong_schema_version_is_a_miss(self, isolated_engine, tmp_path):
        layer = small_layer()
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        first = simulate_layer(layer, CONFIG, ModelCategory.B, OPTIONS)
        path = cache.path_for(key_of(layer))
        stale = json.loads(path.read_text())
        stale["v"] = 999
        path.write_text(json.dumps(stale))

        engine.clear_memo_cache()
        fresh = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(fresh)
        assert simulate_layer(layer, CONFIG, ModelCategory.B, OPTIONS) == first
        assert fresh.stats.errors == 1

    def test_clear_removes_entries(self, isolated_engine, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        engine.set_persistent_cache(cache)
        simulate_layer(small_layer(), CONFIG, ModelCategory.B, OPTIONS)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_stats_merge_and_hit_rate(self):
        stats = CacheStats(hits=9, misses=1)
        stats.merge(CacheStats(hits=1, misses=0, puts=2))
        assert stats.hits == 10 and stats.lookups == 11
        assert stats.hit_rate == pytest.approx(10 / 11)
        assert CacheStats().hit_rate == 0.0
