"""Tests for the benchmark network definitions (Table IV workloads)."""

import pytest

from repro.config import ModelCategory
from repro.workloads.models import (
    alexnet,
    bert_base,
    googlenet,
    inception_v3,
    mobilenet_v2,
    resnet50,
)
from repro.workloads.registry import BENCHMARKS, benchmark, benchmark_names, suite_for


class TestTopologies:
    def test_alexnet_macs(self):
        # ~715M MACs (five convs + three FCs at batch 1).
        assert alexnet().macs == pytest.approx(715e6, rel=0.05)

    def test_resnet50_macs(self):
        assert resnet50().macs == pytest.approx(4.1e9, rel=0.08)

    def test_googlenet_macs(self):
        assert googlenet().macs == pytest.approx(1.5e9, rel=0.15)

    def test_inception_v3_macs(self):
        assert inception_v3().macs == pytest.approx(5.7e9, rel=0.15)

    def test_mobilenet_v2_macs(self):
        assert mobilenet_v2().macs == pytest.approx(300e6, rel=0.15)

    def test_bert_macs(self):
        # 12 encoders, hidden 768, FFN 3072, seq 64: ~5.6G MACs.
        assert bert_base().macs == pytest.approx(5.6e9, rel=0.1)

    def test_alexnet_conv2_shape(self):
        conv2 = alexnet().layers[1].spec
        gemm = conv2.gemms()[0]
        assert (gemm.m, gemm.k, gemm.n) == (27 * 27, 64 * 25, 192)

    def test_mobilenet_has_depthwise_groups(self):
        dw = [
            l.spec for l in mobilenet_v2().layers
            if getattr(l.spec, "groups", 1) > 1
        ]
        assert len(dw) == 17
        assert all(s.groups == s.in_channels for s in dw)

    def test_bert_attention_marks_dynamic_gemms(self):
        attn = bert_base().layers[0].spec
        dynamic = [g for g in attn.gemms() if g.weight_is_dynamic]
        assert len(dynamic) == 2  # scores and context


class TestSparsitySchedules:
    @pytest.mark.parametrize(
        "info",
        BENCHMARKS,
        ids=[b.name for b in BENCHMARKS],
    )
    def test_network_ratios_match_table_iv(self, info):
        net = info.network
        assert net.weight_sparsity == pytest.approx(info.weight_sparsity, abs=0.02)
        assert net.act_sparsity == pytest.approx(info.act_sparsity, abs=0.03)

    def test_first_layer_activations_dense(self):
        # The image input to conv1 has no ReLU zeros.
        for factory in (alexnet, resnet50, mobilenet_v2):
            assert factory().layers[0].act_density == 1.0

    def test_fc_layers_prune_hardest(self):
        net = alexnet()
        conv_density = net.layers[1].weight_density
        fc_density = net.layers[5].weight_density
        assert fc_density < conv_density

    def test_first_conv_resists_pruning(self):
        net = resnet50()
        assert net.layers[0].weight_density > net.layers[1].weight_density

    def test_bert_activations_dense(self):
        assert all(l.act_density == 1.0 for l in bert_base().layers)

    def test_densities_in_range(self):
        for info in BENCHMARKS:
            for layer in info.network.layers:
                assert 0.0 < layer.weight_density <= 1.0
                assert 0.0 < layer.act_density <= 1.0


class TestRegistry:
    def test_six_benchmarks(self):
        assert benchmark_names() == [
            "AlexNet", "GoogleNet", "ResNet50", "InceptionV3", "MobileNetV2", "BERT",
        ]

    def test_lookup_case_insensitive(self):
        assert benchmark("bert").name == "BERT"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            benchmark("VGG")

    def test_bert_skips_a_categories(self):
        cats = benchmark("BERT").categories()
        assert ModelCategory.A not in cats
        assert ModelCategory.B in cats

    def test_suite_for_categories(self):
        assert len(suite_for(ModelCategory.B)) == 6
        assert len(suite_for(ModelCategory.A)) == 5
        assert all(b.act_sparsity > 0 for b in suite_for(ModelCategory.AB))
